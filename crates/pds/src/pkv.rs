//! A recoverable concurrent hash map (`u64 → u64`).
//!
//! [`KvStore`] is the *transient* memcached-style store (DRAM bucket
//! vector, byte values) the allocator-comparison figures run on. This is
//! its **recoverable** counterpart for the crash harness: a fixed bucket
//! array and chained entries living entirely in a Ralloc heap, reachable
//! from a registered root, links as region offsets, with a
//! [`ralloc::Trace`] filter for precise recovery tracing.
//!
//! Crash-safety comes from two single-word publishes:
//!
//! * **insert**: the entry (key, value, chain link) is written and
//!   persisted *before* the bucket head CAS links it in, so a crash can
//!   only miss the whole entry, never expose a torn one. Chains grow at
//!   the head and entries are never unlinked, so a plain offset CAS
//!   needs no ABA counter.
//! * **update / remove**: a single atomic store to the entry's value
//!   word (remove stores a tombstone), persisted after. Values are
//!   restricted to `u64` precisely so updates can never tear.

use std::sync::atomic::{AtomicU64, Ordering};

use ralloc::{PersistentAllocator, Ralloc, Trace, Tracer};

/// Fixed bucket count (entries chain within a bucket).
const BUCKETS: usize = 512;

/// Reserved value encoding "logically deleted". `u64::MAX` is therefore
/// not storable; [`PKv::insert`] rejects it.
const TOMBSTONE: u64 = u64::MAX;

#[inline]
fn bucket_of(key: u64) -> usize {
    // Fibonacci hashing spreads sequential keys (the workloads use
    // per-thread key ranges) across buckets.
    (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 55) as usize % BUCKETS
}

/// Bucket-array head block: lives in the heap, registered as a root.
/// Each slot is a region offset + 1 of the first chain entry (0 = empty).
#[repr(C)]
pub struct KvHead {
    buckets: [AtomicU64; BUCKETS],
}

/// A chain entry. `key` and `next` are immutable after publication;
/// `value` is atomically updatable (tombstone = deleted).
#[repr(C)]
pub struct KvEntry {
    key: u64,
    value: AtomicU64,
    /// Region offset + 1 of the next entry (0 = end).
    next: u64,
}

unsafe impl Trace for KvHead {
    fn trace(&self, t: &mut Tracer<'_>) {
        for b in &self.buckets {
            if let Some(off) = b.load(Ordering::Relaxed).checked_sub(1) {
                t.visit_region_offset::<KvEntry>(off);
            }
        }
    }
}

unsafe impl Trace for KvEntry {
    fn trace(&self, t: &mut Tracer<'_>) {
        if let Some(off) = self.next.checked_sub(1) {
            t.visit_region_offset::<KvEntry>(off);
        }
    }
}

/// A persistent, recoverable, lock-free `u64 → u64` hash map on a Ralloc
/// heap.
pub struct PKv {
    heap: Ralloc,
    head: *mut KvHead,
}

// SAFETY: all shared mutation goes through atomics in the heap.
unsafe impl Send for PKv {}
unsafe impl Sync for PKv {}

impl PKv {
    /// Create a fresh map whose bucket block is registered as root `root`.
    pub fn create(heap: &Ralloc, root: usize) -> PKv {
        let head = heap.malloc(std::mem::size_of::<KvHead>()) as *mut KvHead;
        assert!(!head.is_null(), "heap exhausted creating kv bucket block");
        // SAFETY: fresh block, exclusively owned.
        unsafe {
            for b in &(*head).buckets {
                b.store(0, Ordering::Relaxed);
            }
        }
        heap.persist(head as *const u8, std::mem::size_of::<KvHead>());
        heap.set_root::<KvHead>(root, head);
        PKv { heap: heap.clone(), head }
    }

    /// Re-attach to a map persisted at root `root`.
    pub fn attach(heap: &Ralloc, root: usize) -> Option<PKv> {
        let head = heap.get_root::<KvHead>(root);
        if head.is_null() {
            return None;
        }
        Some(PKv { heap: heap.clone(), head })
    }

    #[inline]
    fn bucket(&self, i: usize) -> &AtomicU64 {
        // SAFETY: head block is live for the map's lifetime.
        unsafe { &(*self.head).buckets[i] }
    }

    #[inline]
    fn to_addr(&self, off: u64) -> usize {
        self.heap.region_base() + off as usize
    }

    /// Find the entry for `key` in its chain (including tombstoned ones —
    /// the entry is the key's permanent home once linked).
    fn find(&self, key: u64) -> Option<*mut KvEntry> {
        let mut cur1 = self.bucket(bucket_of(key)).load(Ordering::Acquire);
        while let Some(off) = cur1.checked_sub(1) {
            let e = self.to_addr(off) as *mut KvEntry;
            // SAFETY: published entries are immutable in key/next.
            let (k, next) = unsafe { ((*e).key, (*e).next) };
            if k == key {
                return Some(e);
            }
            cur1 = next;
        }
        None
    }

    /// Insert or update `key → value`. Lock-free. Returns false only on
    /// heap exhaustion. `value` must not be `u64::MAX` (tombstone).
    pub fn insert(&self, key: u64, value: u64) -> bool {
        assert!(value != TOMBSTONE, "u64::MAX is the tombstone value");
        loop {
            if let Some(e) = self.find(key) {
                // SAFETY: entry is live; value is the mutable word.
                let v = unsafe { &(*e).value };
                v.store(value, Ordering::Release);
                self.heap.persist(v as *const AtomicU64 as *const u8, 8);
                return true;
            }
            // No entry: publish a fresh one at the chain head.
            let bucket = self.bucket(bucket_of(key));
            let head1 = bucket.load(Ordering::Acquire);
            let e = self.heap.malloc(std::mem::size_of::<KvEntry>()) as *mut KvEntry;
            if e.is_null() {
                return false;
            }
            // SAFETY: we own the unpublished entry.
            unsafe {
                (*e).key = key;
                (*e).value = AtomicU64::new(value);
                (*e).next = head1;
            }
            self.heap.persist(e as *const u8, std::mem::size_of::<KvEntry>());
            let e_off1 = (e as usize - self.heap.region_base()) as u64 + 1;
            if bucket
                .compare_exchange(head1, e_off1, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                self.heap.persist(bucket as *const AtomicU64 as *const u8, 8);
                return true;
            }
            // Lost the race: another thread changed the chain (possibly
            // inserting this very key). Unpublish ours and retry from
            // the find.
            self.heap.free(e as *mut u8);
        }
    }

    /// Read the value for `key`.
    pub fn get(&self, key: u64) -> Option<u64> {
        let e = self.find(key)?;
        // SAFETY: entry is live.
        let v = unsafe { (*e).value.load(Ordering::Acquire) };
        (v != TOMBSTONE).then_some(v)
    }

    /// Logically remove `key`, returning the previous value. The entry
    /// stays linked as a tombstone (chains never unlink — that is what
    /// keeps publication single-word).
    pub fn remove(&self, key: u64) -> Option<u64> {
        let e = self.find(key)?;
        // SAFETY: entry is live.
        let v = unsafe { &(*e).value };
        let prev = v.swap(TOMBSTONE, Ordering::AcqRel);
        self.heap.persist(v as *const AtomicU64 as *const u8, 8);
        (prev != TOMBSTONE).then_some(prev)
    }

    /// Number of live (non-tombstoned) keys (O(n); offline use).
    pub fn len(&self) -> usize {
        self.snapshot().len()
    }

    /// True if no live keys exist.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot all live `(key, value)` pairs, unordered (offline use).
    pub fn snapshot(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        for i in 0..BUCKETS {
            let mut cur1 = self.bucket(i).load(Ordering::Acquire);
            while let Some(off) = cur1.checked_sub(1) {
                // SAFETY: offline traversal.
                let e = unsafe { &*(self.to_addr(off) as *const KvEntry) };
                let v = e.value.load(Ordering::Acquire);
                if v != TOMBSTONE {
                    out.push((e.key, v));
                }
                cur1 = e.next;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ralloc::RallocConfig;

    fn heap() -> Ralloc {
        Ralloc::create(16 << 20, RallocConfig::tracked())
    }

    #[test]
    fn basic_map_semantics() {
        let h = heap();
        let m = PKv::create(&h, 0);
        assert_eq!(m.get(1), None);
        m.insert(1, 10);
        m.insert(2, 20);
        assert_eq!(m.get(1), Some(10));
        m.insert(1, 11);
        assert_eq!(m.get(1), Some(11));
        assert_eq!(m.remove(1), Some(11));
        assert_eq!(m.get(1), None);
        assert_eq!(m.remove(1), None);
        // Re-insert over a tombstone.
        m.insert(1, 12);
        assert_eq!(m.get(1), Some(12));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn concurrent_disjoint_keys() {
        let h = Ralloc::create(64 << 20, RallocConfig::default());
        let m = PKv::create(&h, 0);
        let n_threads = 8u64;
        let per = 2000u64;
        std::thread::scope(|sc| {
            for t in 0..n_threads {
                let m = &m;
                sc.spawn(move || {
                    for i in 0..per {
                        let k = t * per + i;
                        assert!(m.insert(k, k * 2));
                        if i % 3 == 0 {
                            m.remove(k);
                        }
                    }
                });
            }
        });
        for t in 0..n_threads {
            for i in 0..per {
                let k = t * per + i;
                let expect = (i % 3 != 0).then_some(k * 2);
                assert_eq!(m.get(k), expect, "key {k}");
            }
        }
    }

    #[test]
    fn racing_inserts_on_one_key_keep_one_entry() {
        let h = Ralloc::create(64 << 20, RallocConfig::default());
        let m = PKv::create(&h, 0);
        std::thread::scope(|sc| {
            for t in 0..8u64 {
                let m = &m;
                sc.spawn(move || {
                    for _ in 0..500 {
                        m.insert(42, t + 1);
                    }
                });
            }
        });
        let v = m.get(42).expect("key present");
        assert!((1..=8).contains(&v));
        assert_eq!(m.snapshot().iter().filter(|(k, _)| *k == 42).count(), 1);
    }

    #[test]
    fn survives_crash_and_recovery() {
        let h = heap();
        let m = PKv::create(&h, 0);
        for k in 0..200 {
            m.insert(k, k + 1000);
        }
        for k in 0..50 {
            m.remove(k);
        }
        h.crash_simulated();
        let stats = h.recover();
        // Bucket block + 200 entries (tombstones stay linked).
        assert_eq!(stats.reachable_blocks, 201);
        let m = PKv::attach(&h, 0).unwrap();
        assert_eq!(m.len(), 150);
        for k in 0..200 {
            let expect = (k >= 50).then_some(k + 1000);
            assert_eq!(m.get(k), expect);
        }
        // Still operational.
        m.insert(7, 7);
        assert_eq!(m.get(7), Some(7));
    }

    #[test]
    fn position_independent_across_remap() {
        let h = heap();
        let m = PKv::create(&h, 0);
        for k in 0..64 {
            m.insert(k, k * k);
        }
        let image = h.pool().persistent_image();
        drop((m, h));
        let (h2, dirty) = Ralloc::from_image(&image, RallocConfig::tracked());
        assert!(dirty);
        let _ = h2.get_root::<KvHead>(0);
        h2.recover();
        let m2 = PKv::attach(&h2, 0).unwrap();
        assert_eq!(m2.len(), 64);
        assert_eq!(m2.get(9), Some(81));
    }
}
