//! A library-mode key-value store — the memcached stand-in for the YCSB
//! experiment (paper §6.3, Fig. 5f).
//!
//! The paper converted memcached into a library so the client calls the
//! key-value code directly (no sockets), putting the allocator on the
//! critical path of every set/update. This store reproduces that shape:
//! a chained hash table with per-bucket locks, values stored in
//! allocator-provided blocks (one allocation per entry; updates of a
//! different size reallocate, as memcached item replacement does).

use parking_lot::RwLock;
use std::sync::atomic::{AtomicUsize, Ordering};

use ralloc::PersistentAllocator;

#[repr(C)]
struct Entry {
    key: u64,
    vlen: u32,
    _pad: u32,
    next: *mut Entry,
    // value bytes follow inline
}

const HDR: usize = std::mem::size_of::<Entry>();

#[inline]
fn value_ptr(e: *mut Entry) -> *mut u8 {
    // SAFETY: entries are allocated with HDR + vlen bytes.
    unsafe { (e as *mut u8).add(HDR) }
}

/// Fibonacci hash: good spread for sequential YCSB keys.
#[inline]
fn hash(key: u64) -> u64 {
    key.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// A concurrent chained-hash KV store of `u64 -> bytes` over `A`.
pub struct KvStore<A: PersistentAllocator> {
    alloc: A,
    buckets: Vec<RwLock<*mut Entry>>,
    mask: u64,
    len: AtomicUsize,
}

// SAFETY: bucket chains are guarded by their RwLock; entries never move.
unsafe impl<A: PersistentAllocator> Send for KvStore<A> {}
unsafe impl<A: PersistentAllocator> Sync for KvStore<A> {}

impl<A: PersistentAllocator> KvStore<A> {
    /// Create a store with `buckets` buckets (rounded up to a power of 2).
    pub fn new(alloc: A, buckets: usize) -> KvStore<A> {
        let n = buckets.next_power_of_two().max(16);
        KvStore {
            alloc,
            buckets: (0..n).map(|_| RwLock::new(std::ptr::null_mut())).collect(),
            mask: n as u64 - 1,
            len: AtomicUsize::new(0),
        }
    }

    /// Number of keys stored.
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Borrow the allocator.
    pub fn allocator(&self) -> &A {
        &self.alloc
    }

    #[inline]
    fn bucket(&self, key: u64) -> &RwLock<*mut Entry> {
        &self.buckets[(hash(key) & self.mask) as usize]
    }

    fn make_entry(&self, key: u64, value: &[u8], next: *mut Entry) -> *mut Entry {
        let e = self.alloc.malloc(HDR + value.len()) as *mut Entry;
        assert!(!e.is_null(), "allocator exhausted in KvStore");
        // SAFETY: fresh block of HDR + vlen bytes.
        unsafe {
            (*e).key = key;
            (*e).vlen = value.len() as u32;
            (*e)._pad = 0;
            (*e).next = next;
            std::ptr::copy_nonoverlapping(value.as_ptr(), value_ptr(e), value.len());
        }
        self.alloc.persist(e as *const u8, HDR + value.len());
        e
    }

    /// Insert or update; returns true if the key was new.
    pub fn set(&self, key: u64, value: &[u8]) -> bool {
        let mut head = self.bucket(key).write();
        let mut cur = *head;
        let mut prev: *mut Entry = std::ptr::null_mut();
        // SAFETY: chain guarded by the bucket write lock.
        unsafe {
            while !cur.is_null() {
                if (*cur).key == key {
                    if (*cur).vlen as usize == value.len() {
                        // In-place update (memcached same-size fast path).
                        std::ptr::copy_nonoverlapping(value.as_ptr(), value_ptr(cur), value.len());
                        self.alloc.persist(value_ptr(cur), value.len());
                    } else {
                        // Replace: allocate new item, splice, free old.
                        let repl = self.make_entry(key, value, (*cur).next);
                        if prev.is_null() {
                            *head = repl;
                        } else {
                            (*prev).next = repl;
                        }
                        self.alloc.free(cur as *mut u8);
                    }
                    return false;
                }
                prev = cur;
                cur = (*cur).next;
            }
            let e = self.make_entry(key, value, *head);
            *head = e;
        }
        self.len.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Read a value into `buf`; returns the value length if present.
    pub fn get_into(&self, key: u64, buf: &mut [u8]) -> Option<usize> {
        let head = self.bucket(key).read();
        let mut cur = *head;
        // SAFETY: chain guarded by the bucket read lock.
        unsafe {
            while !cur.is_null() {
                if (*cur).key == key {
                    let n = ((*cur).vlen as usize).min(buf.len());
                    std::ptr::copy_nonoverlapping(value_ptr(cur), buf.as_mut_ptr(), n);
                    return Some((*cur).vlen as usize);
                }
                cur = (*cur).next;
            }
        }
        None
    }

    /// Read a value as an owned vector.
    pub fn get(&self, key: u64) -> Option<Vec<u8>> {
        let head = self.bucket(key).read();
        let mut cur = *head;
        // SAFETY: chain guarded by the bucket read lock.
        unsafe {
            while !cur.is_null() {
                if (*cur).key == key {
                    let n = (*cur).vlen as usize;
                    let mut out = vec![0u8; n];
                    std::ptr::copy_nonoverlapping(value_ptr(cur), out.as_mut_ptr(), n);
                    return Some(out);
                }
                cur = (*cur).next;
            }
        }
        None
    }

    /// Delete a key; true if it was present. Frees the entry.
    pub fn delete(&self, key: u64) -> bool {
        let mut head = self.bucket(key).write();
        let mut cur = *head;
        let mut prev: *mut Entry = std::ptr::null_mut();
        // SAFETY: chain guarded by the bucket write lock.
        unsafe {
            while !cur.is_null() {
                if (*cur).key == key {
                    if prev.is_null() {
                        *head = (*cur).next;
                    } else {
                        (*prev).next = (*cur).next;
                    }
                    self.alloc.free(cur as *mut u8);
                    self.len.fetch_sub(1, Ordering::Relaxed);
                    return true;
                }
                prev = cur;
                cur = (*cur).next;
            }
        }
        false
    }
}

impl<A: PersistentAllocator> Drop for KvStore<A> {
    fn drop(&mut self) {
        for b in &self.buckets {
            let mut cur = *b.write();
            while !cur.is_null() {
                // SAFETY: exclusive access during drop.
                let next = unsafe { (*cur).next };
                self.alloc.free(cur as *mut u8);
                cur = next;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use baselines::SystemAlloc;
    use ralloc::{Ralloc, RallocConfig};

    #[test]
    fn set_get_delete() {
        let kv = KvStore::new(SystemAlloc::new(), 64);
        assert!(kv.set(1, b"hello"));
        assert!(!kv.set(1, b"world"), "update is not an insert");
        assert_eq!(kv.get(1).as_deref(), Some(&b"world"[..]));
        assert!(kv.delete(1));
        assert!(!kv.delete(1));
        assert_eq!(kv.get(1), None);
    }

    #[test]
    fn different_size_update_reallocates() {
        let kv = KvStore::new(Ralloc::create(8 << 20, RallocConfig::default()), 64);
        kv.set(9, &[7u8; 100]);
        kv.set(9, &[8u8; 400]); // forces replacement
        assert_eq!(kv.get(9).unwrap(), vec![8u8; 400]);
        kv.set(9, &[9u8; 16]);
        assert_eq!(kv.get(9).unwrap(), vec![9u8; 16]);
        assert_eq!(kv.len(), 1);
    }

    #[test]
    fn get_into_reports_full_length() {
        let kv = KvStore::new(SystemAlloc::new(), 64);
        kv.set(5, &[3u8; 64]);
        let mut buf = [0u8; 16];
        assert_eq!(kv.get_into(5, &mut buf), Some(64));
        assert_eq!(buf, [3u8; 16]);
        assert_eq!(kv.get_into(6, &mut buf), None);
    }

    #[test]
    fn many_keys_chain_correctly() {
        let kv = KvStore::new(SystemAlloc::new(), 16); // force chains
        for k in 0..2000u64 {
            kv.set(k, &k.to_le_bytes());
        }
        assert_eq!(kv.len(), 2000);
        for k in 0..2000u64 {
            assert_eq!(kv.get(k).unwrap(), k.to_le_bytes());
        }
        for k in (0..2000u64).step_by(2) {
            assert!(kv.delete(k));
        }
        assert_eq!(kv.len(), 1000);
        for k in 0..2000u64 {
            assert_eq!(kv.get(k).is_some(), k % 2 == 1);
        }
    }

    #[test]
    fn concurrent_disjoint_writers_and_readers() {
        let kv = std::sync::Arc::new(KvStore::new(
            Ralloc::create(64 << 20, RallocConfig::default()),
            1024,
        ));
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let kv = kv.clone();
                s.spawn(move || {
                    for i in 0..5000u64 {
                        let k = t * 5000 + i;
                        kv.set(k, &k.to_le_bytes());
                    }
                });
            }
        });
        assert_eq!(kv.len(), 20_000);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let kv = kv.clone();
                s.spawn(move || {
                    for i in 0..5000u64 {
                        let k = t * 5000 + i;
                        assert_eq!(kv.get(k).unwrap(), k.to_le_bytes());
                    }
                });
            }
        });
    }
}
