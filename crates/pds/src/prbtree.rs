//! A recoverable red-black tree: persistent op-log + transient index.
//!
//! [`RbTree`] is a sequential DRAM-pointer structure (the Vacation OLTP
//! workload mutates it under locks), so it cannot live in a persistent
//! region directly — its child pointers are raw addresses and its
//! rebalancing rotates several of them non-atomically. [`PRbTree`] makes
//! it recoverable the way real PM applications wrap index structures
//! (and the way the paper's memcached port treats its hash table): the
//! *log* is persistent, the *index* is a cache.
//!
//! * A persistent **append-only op-log** lives in the Ralloc heap,
//!   reachable from a registered root. Each record is immutable after
//!   publication; publication is a single head-word store, and the
//!   record is persisted *before* the head, so a crash exposes either
//!   the whole op or nothing.
//! * A transient [`RbTree`] over [`SystemAlloc`] serves reads. On
//!   [`PRbTree::attach`] it is rebuilt by replaying the log oldest-first.
//!
//! All mutations hold one mutex (matching Vacation's locking discipline),
//! which also serializes log appends — the head word needs no ABA
//! counter.

use std::sync::atomic::{AtomicU64, Ordering};

use baselines::SystemAlloc;
use parking_lot::Mutex;
use ralloc::{PersistentAllocator, Ralloc, Trace, Tracer};

const OP_INSERT: u64 = 0;
const OP_REMOVE: u64 = 1;

/// Log anchor block (registered as a root). `head` holds the region
/// offset + 1 of the newest record (0 = empty log).
#[repr(C)]
pub struct TreeLogHead {
    head: AtomicU64,
}

/// One logged mutation. Immutable once reachable from the head.
#[repr(C)]
struct TreeLogRec {
    op: u64,
    key: u64,
    value: u64,
    /// Region offset + 1 of the previously-newest record (0 = end).
    next: u64,
}

unsafe impl Trace for TreeLogHead {
    fn trace(&self, t: &mut Tracer<'_>) {
        if let Some(off) = self.head.load(Ordering::Relaxed).checked_sub(1) {
            t.visit_region_offset::<TreeLogRec>(off);
        }
    }
}

unsafe impl Trace for TreeLogRec {
    fn trace(&self, t: &mut Tracer<'_>) {
        if let Some(off) = self.next.checked_sub(1) {
            t.visit_region_offset::<TreeLogRec>(off);
        }
    }
}

/// A recoverable `u64 → u64` ordered map: crash-consistent op-log on a
/// Ralloc heap, lock-protected transient red-black index for service.
pub struct PRbTree {
    heap: Ralloc,
    anchor: *mut TreeLogHead,
    index: Mutex<RbTree<SystemAlloc>>,
}

// SAFETY: the persistent side is append-only behind atomics; the
// transient index is mutex-protected.
unsafe impl Send for PRbTree {}
unsafe impl Sync for PRbTree {}

use crate::RbTree;

impl PRbTree {
    /// Create a fresh tree whose log anchor is registered as root `root`.
    pub fn create(heap: &Ralloc, root: usize) -> PRbTree {
        let anchor = heap.malloc(std::mem::size_of::<TreeLogHead>()) as *mut TreeLogHead;
        assert!(!anchor.is_null(), "heap exhausted creating tree log anchor");
        // SAFETY: fresh block, exclusively owned.
        unsafe { (*anchor).head.store(0, Ordering::Relaxed) };
        heap.persist(anchor as *const u8, std::mem::size_of::<TreeLogHead>());
        heap.set_root::<TreeLogHead>(root, anchor);
        PRbTree {
            heap: heap.clone(),
            anchor,
            index: Mutex::new(RbTree::new(SystemAlloc::new())),
        }
    }

    /// Re-attach to a tree persisted at root `root`, rebuilding the
    /// transient index by replaying the log oldest-first.
    pub fn attach(heap: &Ralloc, root: usize) -> Option<PRbTree> {
        let anchor = heap.get_root::<TreeLogHead>(root);
        if anchor.is_null() {
            return None;
        }
        let base = heap.region_base();
        // SAFETY: the anchor and every record reachable from it were
        // persisted before publication and retained by recovery.
        let mut ops = Vec::new();
        let mut cur1 = unsafe { (*anchor).head.load(Ordering::Acquire) };
        while let Some(off) = cur1.checked_sub(1) {
            let r = unsafe { &*((base + off as usize) as *const TreeLogRec) };
            ops.push((r.op, r.key, r.value));
            cur1 = r.next;
        }
        let mut index = RbTree::new(SystemAlloc::new());
        for &(op, key, value) in ops.iter().rev() {
            match op {
                OP_INSERT => {
                    index.insert(key, value);
                }
                OP_REMOVE => {
                    index.remove(key);
                }
                other => panic!("corrupt tree log: unknown op {other}"),
            }
        }
        Some(PRbTree { heap: heap.clone(), anchor, index: Mutex::new(index) })
    }

    /// Append one record to the persistent log. Caller must hold the
    /// index lock (appends are serialized by it).
    fn append(&self, op: u64, key: u64, value: u64) {
        // SAFETY: anchor is live for the tree's lifetime.
        let head = unsafe { &(*self.anchor).head };
        let rec = self.heap.malloc(std::mem::size_of::<TreeLogRec>()) as *mut TreeLogRec;
        assert!(!rec.is_null(), "heap exhausted appending tree log record");
        // SAFETY: we own the unpublished record.
        unsafe {
            (*rec).op = op;
            (*rec).key = key;
            (*rec).value = value;
            (*rec).next = head.load(Ordering::Acquire);
        }
        self.heap.persist(rec as *const u8, std::mem::size_of::<TreeLogRec>());
        let rec_off1 = (rec as usize - self.heap.region_base()) as u64 + 1;
        head.store(rec_off1, Ordering::Release);
        self.heap.persist(head as *const AtomicU64 as *const u8, 8);
    }

    /// Insert or update `key → value`; returns the previous value.
    pub fn insert(&self, key: u64, value: u64) -> Option<u64> {
        let mut index = self.index.lock();
        self.append(OP_INSERT, key, value);
        index.insert(key, value)
    }

    /// Remove `key`; returns the previous value.
    pub fn remove(&self, key: u64) -> Option<u64> {
        let mut index = self.index.lock();
        if !index.contains(key) {
            return None;
        }
        self.append(OP_REMOVE, key, 0);
        index.remove(key)
    }

    /// Read the value for `key`.
    pub fn get(&self, key: u64) -> Option<u64> {
        self.index.lock().get(key)
    }

    /// True if `key` is present.
    pub fn contains(&self, key: u64) -> bool {
        self.index.lock().contains(key)
    }

    /// All keys in ascending order.
    pub fn keys(&self) -> Vec<u64> {
        self.index.lock().keys()
    }

    /// Number of live keys.
    pub fn len(&self) -> usize {
        self.index.lock().len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Check red-black invariants of the transient index; returns black
    /// height.
    pub fn validate(&self) -> usize {
        self.index.lock().validate()
    }

    /// Number of records currently in the persistent log (O(n)).
    pub fn log_len(&self) -> usize {
        let base = self.heap.region_base();
        // SAFETY: published records are immutable.
        let mut n = 0;
        let mut cur1 = unsafe { (*self.anchor).head.load(Ordering::Acquire) };
        while let Some(off) = cur1.checked_sub(1) {
            n += 1;
            cur1 = unsafe { (*((base + off as usize) as *const TreeLogRec)).next };
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ralloc::RallocConfig;

    fn heap() -> Ralloc {
        Ralloc::create(16 << 20, RallocConfig::tracked())
    }

    #[test]
    fn basic_ordered_map_semantics() {
        let h = heap();
        let t = PRbTree::create(&h, 0);
        assert_eq!(t.insert(5, 50), None);
        assert_eq!(t.insert(3, 30), None);
        assert_eq!(t.insert(8, 80), None);
        assert_eq!(t.insert(5, 55), Some(50));
        assert_eq!(t.get(5), Some(55));
        assert_eq!(t.remove(3), Some(30));
        assert_eq!(t.remove(3), None);
        assert_eq!(t.keys(), vec![5, 8]);
        assert_eq!(t.log_len(), 5); // the no-op remove is not logged
        t.validate();
    }

    #[test]
    fn concurrent_disjoint_keys() {
        let h = Ralloc::create(64 << 20, RallocConfig::default());
        let t = PRbTree::create(&h, 0);
        let n_threads = 8u64;
        let per = 500u64;
        std::thread::scope(|sc| {
            for tid in 0..n_threads {
                let t = &t;
                sc.spawn(move || {
                    for i in 0..per {
                        let k = tid * per + i;
                        t.insert(k, k + 1);
                        if i % 4 == 0 {
                            t.remove(k);
                        }
                    }
                });
            }
        });
        t.validate();
        for tid in 0..n_threads {
            for i in 0..per {
                let k = tid * per + i;
                let expect = (i % 4 != 0).then_some(k + 1);
                assert_eq!(t.get(k), expect, "key {k}");
            }
        }
    }

    #[test]
    fn survives_crash_and_recovery() {
        let h = heap();
        let t = PRbTree::create(&h, 0);
        for k in 0..150 {
            t.insert(k, k * 10);
        }
        for k in 0..30 {
            t.remove(k);
        }
        h.crash_simulated();
        let stats = h.recover();
        // Anchor + 150 insert records + 30 remove records.
        assert_eq!(stats.reachable_blocks, 181);
        let t = PRbTree::attach(&h, 0).unwrap();
        assert_eq!(t.len(), 120);
        assert_eq!(t.log_len(), 180);
        t.validate();
        for k in 0..150 {
            let expect = (k >= 30).then_some(k * 10);
            assert_eq!(t.get(k), expect);
        }
        // Still operational after recovery.
        t.insert(1, 11);
        assert_eq!(t.get(1), Some(11));
    }

    #[test]
    fn position_independent_across_remap() {
        let h = heap();
        let t = PRbTree::create(&h, 0);
        for k in 0..64 {
            t.insert(k, k ^ 0xFF);
        }
        let image = h.pool().persistent_image();
        drop((t, h));
        let (h2, dirty) = Ralloc::from_image(&image, RallocConfig::tracked());
        assert!(dirty);
        // Register the root's trace filter before the recovery sweep.
        let _ = h2.get_root::<TreeLogHead>(0);
        h2.recover();
        let t2 = PRbTree::attach(&h2, 0).unwrap();
        assert_eq!(t2.len(), 64);
        assert_eq!(t2.get(9), Some(9 ^ 0xFF));
        t2.validate();
    }
}
