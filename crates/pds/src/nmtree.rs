//! The lock-free external binary search tree of Natarajan & Mittal
//! (PPoPP'14), used by the paper's second recovery experiment (Fig. 6b).
//!
//! The tree is *external*: internal nodes route, leaves carry key/value
//! pairs. Deletion marks **edges** rather than nodes: the edge to the
//! victim leaf is *flagged*, the edge to its sibling is *tagged*, and the
//! grandparent edge is swung over the sibling with a single CAS. Helping
//! makes every operation lock-free.
//!
//! Persistence/recoverability adaptations (this crate):
//!
//! * child edges store `(superblock-region offset + 1) << 2 | marks`, so
//!   the whole structure is position-independent and a [`ralloc::Trace`]
//!   filter can enumerate children precisely (mark bits are masked off —
//!   exactly the pointer-tagging problem filter functions were invented
//!   for, paper §4.5.1);
//! * unlinked nodes go to a retire list and return to the allocator only
//!   at [`NmTree::quiesce`], the "limbo list layered above free" the
//!   paper describes (§3, §5.2): a crash simply loses the transient
//!   retire list and GC reclaims its nodes.
//!
//! Durable linearizability: nodes are persisted before publication and
//! every successful edge CAS is followed by a persist of that edge
//! (flag/tag CASes included), giving the buffered-durable behaviour the
//! paper's model permits.

use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;
use ralloc::{PersistentAllocator, Ralloc, Trace, Tracer};

const FLAG: u64 = 1;
const TAG: u64 = 2;
const MARKS: u64 = 3;

/// Keys must be below this; two infinity sentinels sit above.
pub const MAX_KEY: u64 = u64::MAX - 2;
const INF1: u64 = u64::MAX - 1;
const INF2: u64 = u64::MAX;

#[inline]
fn edge_pack(off1: u64, marks: u64) -> u64 {
    (off1 << 2) | marks
}

#[inline]
fn edge_off1(word: u64) -> u64 {
    word >> 2
}

#[inline]
fn edge_marks(word: u64) -> u64 {
    word & MARKS
}

/// Tree node; leaves have both child edges zero.
#[repr(C)]
pub struct NmNode {
    key: u64,
    value: u64,
    left: AtomicU64,
    right: AtomicU64,
}

unsafe impl Trace for NmNode {
    fn trace(&self, t: &mut Tracer<'_>) {
        for edge in [&self.left, &self.right] {
            let w = edge.load(Ordering::Relaxed);
            if let Some(off) = edge_off1(w).checked_sub(1) {
                t.visit_region_offset::<NmNode>(off);
            }
        }
    }
}

struct SeekRecord {
    ancestor: *mut NmNode,
    successor: *mut NmNode,
    parent: *mut NmNode,
    leaf: *mut NmNode,
}

/// A recoverable lock-free external BST of `u64 -> u64` on a Ralloc heap.
pub struct NmTree {
    heap: Ralloc,
    /// Root sentinel R (key INF2); registered as a persistent root.
    r: *mut NmNode,
    /// Sentinel S (key INF1), R's left child.
    s: *mut NmNode,
    /// Unlinked nodes awaiting a quiescent point.
    retired: Mutex<Vec<usize>>,
}

// SAFETY: shared mutation is via atomics; the retire list is locked.
unsafe impl Send for NmTree {}
unsafe impl Sync for NmTree {}

impl NmTree {
    fn alloc_node(heap: &Ralloc, key: u64, value: u64) -> *mut NmNode {
        let n = heap.malloc(std::mem::size_of::<NmNode>()) as *mut NmNode;
        assert!(!n.is_null(), "heap exhausted in NmTree");
        // SAFETY: fresh block.
        unsafe {
            (*n).key = key;
            (*n).value = value;
            (*n).left = AtomicU64::new(0);
            (*n).right = AtomicU64::new(0);
        }
        n
    }

    #[inline]
    fn off1(&self, node: *mut NmNode) -> u64 {
        (node as usize - self.heap.region_base()) as u64 + 1
    }

    #[inline]
    fn node(&self, off1: u64) -> *mut NmNode {
        debug_assert_ne!(off1, 0);
        (self.heap.region_base() + (off1 - 1) as usize) as *mut NmNode
    }

    fn persist_node(&self, n: *mut NmNode) {
        self.heap.persist(n as *const u8, std::mem::size_of::<NmNode>());
    }

    fn persist_edge(&self, e: &AtomicU64) {
        self.heap.persist(e as *const AtomicU64 as *const u8, 8);
    }

    /// Create a fresh tree registered at root slot `root`.
    pub fn create(heap: &Ralloc, root: usize) -> NmTree {
        let r = Self::alloc_node(heap, INF2, 0);
        let s = Self::alloc_node(heap, INF1, 0);
        let leaf_inf1 = Self::alloc_node(heap, INF1, 0);
        let leaf_inf2a = Self::alloc_node(heap, INF2, 0);
        let leaf_inf2b = Self::alloc_node(heap, INF2, 0);
        let tree = NmTree { heap: heap.clone(), r, s, retired: Mutex::new(Vec::new()) };
        // SAFETY: freshly allocated, exclusively owned.
        unsafe {
            (*s).left.store(edge_pack(tree.off1(leaf_inf1), 0), Ordering::Relaxed);
            (*s).right.store(edge_pack(tree.off1(leaf_inf2a), 0), Ordering::Relaxed);
            (*r).left.store(edge_pack(tree.off1(s), 0), Ordering::Relaxed);
            (*r).right.store(edge_pack(tree.off1(leaf_inf2b), 0), Ordering::Relaxed);
        }
        for n in [leaf_inf1, leaf_inf2a, leaf_inf2b, s, r] {
            tree.persist_node(n);
        }
        heap.set_root::<NmNode>(root, r);
        tree
    }

    /// Re-attach to a tree persisted at `root` (clean restart or after
    /// recovery); registers the filter function.
    pub fn attach(heap: &Ralloc, root: usize) -> Option<NmTree> {
        let r = heap.get_root::<NmNode>(root);
        if r.is_null() {
            return None;
        }
        let tree = NmTree {
            heap: heap.clone(),
            r,
            s: std::ptr::null_mut(),
            retired: Mutex::new(Vec::new()),
        };
        // S is R's left child by construction.
        // SAFETY: R is live.
        let s_off1 = edge_off1(unsafe { (*r).left.load(Ordering::Acquire) });
        let s = tree.node(s_off1);
        Some(NmTree { s, ..tree })
    }

    #[inline]
    fn is_leaf(&self, n: *mut NmNode) -> bool {
        // SAFETY: tree nodes stay mapped for the heap's lifetime.
        unsafe {
            edge_off1((*n).left.load(Ordering::Acquire)) == 0
                && edge_off1((*n).right.load(Ordering::Acquire)) == 0
        }
    }

    #[inline]
    fn child_edge(&self, n: *mut NmNode, key: u64) -> &AtomicU64 {
        // SAFETY: node is live.
        unsafe {
            if key < (*n).key {
                &(*n).left
            } else {
                &(*n).right
            }
        }
    }

    /// The paper's `seek`: returns the terminal leaf for `key`, its
    /// parent, and the deepest *untagged* edge (ancestor → successor)
    /// above it, which is where a physical removal must swing.
    fn seek(&self, key: u64) -> SeekRecord {
        // Sentinel structure is immortal; interior nodes stay mapped
        // until quiesce, which requires external quiescence.
        {
            let mut rec = SeekRecord {
                ancestor: self.r,
                successor: self.s,
                parent: self.s,
                leaf: std::ptr::null_mut(),
            };
            // Edge parent(S) -> first node on the search path.
            let mut parent_field = self.child_edge(self.s, key).load(Ordering::Acquire);
            rec.leaf = self.node(edge_off1(parent_field));
            // Probe below: zero iff rec.leaf is an actual leaf.
            let mut current_field = self.child_edge(rec.leaf, key).load(Ordering::Acquire);
            let mut current = edge_off1(current_field);
            while current != 0 {
                // The (ancestor, successor) pair tracks the deepest edge
                // into the path that is not tagged for removal.
                if edge_marks(parent_field) & TAG == 0 {
                    rec.ancestor = rec.parent;
                    rec.successor = rec.leaf;
                }
                rec.parent = rec.leaf;
                rec.leaf = self.node(current);
                parent_field = current_field;
                current_field = self.child_edge(rec.leaf, key).load(Ordering::Acquire);
                current = edge_off1(current_field);
            }
            rec
        }
    }

    /// Look up a key.
    pub fn get(&self, key: u64) -> Option<u64> {
        assert!(key <= MAX_KEY);
        let rec = self.seek(key);
        // SAFETY: leaf stays mapped.
        unsafe {
            if (*rec.leaf).key == key {
                Some((*rec.leaf).value)
            } else {
                None
            }
        }
    }

    /// True if present.
    pub fn contains(&self, key: u64) -> bool {
        self.get(key).is_some()
    }

    /// Insert `key -> value`; false if the key already exists.
    pub fn insert(&self, key: u64, value: u64) -> bool {
        assert!(key <= MAX_KEY);
        let mut new_leaf: *mut NmNode = std::ptr::null_mut();
        let mut new_internal: *mut NmNode = std::ptr::null_mut();
        loop {
            let rec = self.seek(key);
            // SAFETY: leaf stays mapped.
            let leaf_key = unsafe { (*rec.leaf).key };
            if leaf_key == key {
                if !new_leaf.is_null() {
                    self.heap.free(new_leaf as *mut u8);
                    self.heap.free(new_internal as *mut u8);
                }
                return false;
            }
            if new_leaf.is_null() {
                new_leaf = Self::alloc_node(&self.heap, key, value);
                new_internal = Self::alloc_node(&self.heap, 0, 0);
            }
            // Order the two leaves under the new internal node.
            // SAFETY: we own new_internal until the CAS publishes it.
            unsafe {
                let (lkey, l_off1, r_off1) = if key < leaf_key {
                    (leaf_key, self.off1(new_leaf), self.off1(rec.leaf))
                } else {
                    (key, self.off1(rec.leaf), self.off1(new_leaf))
                };
                (*new_internal).key = lkey;
                (*new_internal).left.store(edge_pack(l_off1, 0), Ordering::Relaxed);
                (*new_internal).right.store(edge_pack(r_off1, 0), Ordering::Relaxed);
            }
            self.persist_node(new_leaf);
            self.persist_node(new_internal);
            let edge = self.child_edge(rec.parent, key);
            let expected = edge_pack(self.off1(rec.leaf), 0);
            match edge.compare_exchange(
                expected,
                edge_pack(self.off1(new_internal), 0),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => {
                    self.persist_edge(edge);
                    return true;
                }
                Err(actual) => {
                    // Help an in-flight deletion at this edge, then retry.
                    if edge_off1(actual) == self.off1(rec.leaf)
                        && edge_marks(actual) != 0
                    {
                        self.cleanup(key, &rec);
                    }
                }
            }
        }
    }

    /// Remove a key; returns its value if it was present.
    pub fn remove(&self, key: u64) -> Option<u64> {
        assert!(key <= MAX_KEY);
        let mut injected = false;
        let mut victim: *mut NmNode = std::ptr::null_mut();
        let mut value = 0u64;
        loop {
            let rec = self.seek(key);
            if !injected {
                // SAFETY: leaf stays mapped.
                unsafe {
                    if (*rec.leaf).key != key {
                        return None;
                    }
                    value = (*rec.leaf).value;
                }
                let edge = self.child_edge(rec.parent, key);
                let expected = edge_pack(self.off1(rec.leaf), 0);
                match edge.compare_exchange(
                    expected,
                    edge_pack(self.off1(rec.leaf), FLAG),
                    Ordering::AcqRel,
                    Ordering::Acquire,
                ) {
                    Ok(_) => {
                        self.persist_edge(edge);
                        injected = true;
                        victim = rec.leaf;
                        if self.cleanup(key, &rec) {
                            return Some(value);
                        }
                    }
                    Err(actual) => {
                        if edge_off1(actual) == self.off1(rec.leaf) && edge_marks(actual) != 0 {
                            self.cleanup(key, &rec);
                        }
                    }
                }
            } else {
                if rec.leaf != victim {
                    // Someone helped finish our removal.
                    return Some(value);
                }
                if self.cleanup(key, &rec) {
                    return Some(value);
                }
            }
        }
    }

    /// Physically remove the flagged leaf recorded in `rec` (the paper's
    /// `cleanup`): tag the sibling edge to freeze it, then swing the
    /// ancestor edge over the surviving sibling with one CAS.
    fn cleanup(&self, key: u64, rec: &SeekRecord) -> bool {
        let ancestor_edge = self.child_edge(rec.ancestor, key);
        // SAFETY: parent stays mapped (retire-until-quiesce discipline).
        let (child_edge, sibling_edge) = unsafe {
            if key < (*rec.parent).key {
                (&(*rec.parent).left, &(*rec.parent).right)
            } else {
                (&(*rec.parent).right, &(*rec.parent).left)
            }
        };
        let child_word = child_edge.load(Ordering::Acquire);
        // Normally the key-side edge carries the flag; when helping a
        // deletion injected on the *other* side, the survivor is the
        // key-side child instead.
        let (sib_edge, mut sib_word) = if edge_marks(child_word) & FLAG != 0 {
            (sibling_edge, sibling_edge.load(Ordering::Acquire))
        } else {
            (child_edge, child_word)
        };
        // Tag the sibling edge: a tagged edge can no longer be the target
        // of an insert or a flag, freezing its value.
        loop {
            if edge_marks(sib_word) & TAG != 0 {
                break;
            }
            match sib_edge.compare_exchange_weak(
                sib_word,
                sib_word | TAG,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => {
                    sib_word |= TAG;
                    break;
                }
                Err(w) => sib_word = w,
            }
        }
        self.persist_edge(sib_edge);
        // Swing the ancestor edge from the successor to the surviving
        // sibling, dropping the tag but preserving any flag the sibling
        // itself carries (its own deletion will be completed later).
        let expected = edge_pack(self.off1(rec.successor), 0);
        let new_word = edge_pack(edge_off1(sib_word), edge_marks(sib_word) & FLAG);
        match ancestor_edge.compare_exchange(expected, new_word, Ordering::AcqRel, Ordering::Acquire)
        {
            Ok(_) => {
                self.persist_edge(ancestor_edge);
                // Exactly one thread wins this CAS; it retires the dead
                // parent and the flagged victim leaf.
                let victim_word = if std::ptr::eq(sib_edge, child_edge) {
                    sibling_edge.load(Ordering::Acquire)
                } else {
                    child_edge.load(Ordering::Acquire)
                };
                let mut retired = self.retired.lock();
                retired.push(rec.parent as usize);
                if let Some(off) = edge_off1(victim_word).checked_sub(1) {
                    if edge_marks(victim_word) & FLAG != 0 {
                        retired.push(self.node(off + 1) as usize);
                    }
                }
                true
            }
            Err(_) => false,
        }
    }

    /// Return retired nodes to the allocator. Caller must guarantee no
    /// concurrent operations (the paper's quiescent-interval reclamation,
    /// §3). Returns how many nodes were freed.
    pub fn quiesce(&self) -> usize {
        let mut retired = self.retired.lock();
        let n = retired.len();
        for addr in retired.drain(..) {
            self.heap.free(addr as *mut u8);
        }
        n
    }

    /// In-order keys (offline use: tests and verification).
    pub fn keys(&self) -> Vec<u64> {
        let mut out = Vec::new();
        self.walk(self.r, &mut out);
        out
    }

    fn walk(&self, n: *mut NmNode, out: &mut Vec<u64>) {
        if self.is_leaf(n) {
            // SAFETY: offline traversal.
            let key = unsafe { (*n).key };
            if key <= MAX_KEY {
                out.push(key);
            }
            return;
        }
        // SAFETY: offline traversal.
        unsafe {
            for edge in [&(*n).left, &(*n).right] {
                let w = edge.load(Ordering::Relaxed);
                if let Some(off) = edge_off1(w).checked_sub(1) {
                    self.walk(self.node(off + 1), out);
                }
            }
        }
    }

    /// Number of live keys (O(n), offline use).
    pub fn len(&self) -> usize {
        self.keys().len()
    }

    /// True if no real keys are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ralloc::RallocConfig;

    fn heap() -> Ralloc {
        Ralloc::create(32 << 20, RallocConfig::tracked())
    }

    #[test]
    fn insert_get_remove() {
        let h = heap();
        let t = NmTree::create(&h, 0);
        assert_eq!(t.get(10), None);
        assert!(t.insert(10, 100));
        assert!(!t.insert(10, 101), "duplicate insert must fail");
        assert_eq!(t.get(10), Some(100));
        assert_eq!(t.remove(10), Some(100));
        assert_eq!(t.remove(10), None);
        assert_eq!(t.get(10), None);
    }

    #[test]
    fn ordered_iteration() {
        let h = heap();
        let t = NmTree::create(&h, 0);
        for k in [5u64, 3, 9, 1, 7, 2, 8] {
            assert!(t.insert(k, k * 10));
        }
        assert_eq!(t.keys(), vec![1, 2, 3, 5, 7, 8, 9]);
    }

    #[test]
    fn random_ops_match_model() {
        use rand::prelude::*;
        let h = heap();
        let t = NmTree::create(&h, 0);
        let mut model = std::collections::BTreeMap::new();
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..4000 {
            let k = rng.gen_range(0..500u64);
            if rng.gen_bool(0.6) {
                assert_eq!(t.insert(k, k), !model.contains_key(&k));
                model.entry(k).or_insert(k);
            } else {
                assert_eq!(t.remove(k), model.remove(&k));
            }
        }
        assert_eq!(t.keys(), model.keys().copied().collect::<Vec<_>>());
        t.quiesce();
    }

    #[test]
    fn concurrent_inserts_all_land() {
        let h = Ralloc::create(64 << 20, RallocConfig::default());
        let t = NmTree::create(&h, 0);
        let n_threads = 8u64;
        let per = 2000u64;
        std::thread::scope(|s| {
            for tid in 0..n_threads {
                let t = &t;
                s.spawn(move || {
                    for i in 0..per {
                        assert!(t.insert(tid * per + i, i));
                    }
                });
            }
        });
        assert_eq!(t.keys(), (0..n_threads * per).collect::<Vec<_>>());
    }

    #[test]
    fn concurrent_mixed_ops_conserve_keys() {
        let h = Ralloc::create(64 << 20, RallocConfig::default());
        let t = NmTree::create(&h, 0);
        // Pre-populate evens; threads insert odds and delete evens.
        for k in (0..8000u64).step_by(2) {
            t.insert(k, k);
        }
        std::thread::scope(|s| {
            for tid in 0..4u64 {
                let t = &t;
                s.spawn(move || {
                    for i in 0..1000u64 {
                        let k = tid * 2000 + i * 2;
                        assert_eq!(t.remove(k), Some(k), "evens deleted exactly once");
                        assert!(t.insert(k + 1, k), "odds inserted exactly once");
                    }
                });
            }
        });
        let keys = t.keys();
        assert_eq!(keys, (0..8000u64).filter(|k| k % 2 == 1).collect::<Vec<_>>());
        t.quiesce();
    }

    #[test]
    fn survives_crash_and_recovery() {
        let h = heap();
        let t = NmTree::create(&h, 0);
        for k in 0..300u64 {
            t.insert(k * 3, k);
        }
        h.crash_simulated();
        let stats = h.recover();
        // 300 data leaves + 300 internals + 5 sentinel nodes.
        assert_eq!(stats.reachable_blocks, 605);
        let t = NmTree::attach(&h, 0).unwrap();
        assert_eq!(t.len(), 300);
        for k in 0..300u64 {
            assert_eq!(t.get(k * 3), Some(k));
        }
        // Still operational after recovery.
        assert!(t.insert(1_000_000, 1));
        assert_eq!(t.remove(1_000_000), Some(1));
    }

    #[test]
    fn removed_keys_stay_removed_across_crash() {
        let h = heap();
        let t = NmTree::create(&h, 0);
        for k in 0..100u64 {
            t.insert(k, k);
        }
        for k in 0..50u64 {
            assert_eq!(t.remove(k), Some(k));
        }
        h.crash_simulated();
        h.recover();
        let t = NmTree::attach(&h, 0).unwrap();
        assert_eq!(t.keys(), (50..100).collect::<Vec<_>>());
        // Retired-but-unfreed nodes from before the crash were garbage
        // collected; the heap can reuse them.
        for _ in 0..100 {
            assert!(!h.malloc(32).is_null());
        }
    }
}
