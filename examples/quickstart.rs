//! Quickstart: the paper's Figure 1 API end to end — init, malloc/free,
//! roots, close, clean restart, dirty restart with recovery.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use ralloc::{Pptr, Ralloc, RallocConfig, Trace, Tracer};

/// A persistent linked-list node using position-independent pointers.
#[repr(C)]
struct Node {
    value: u64,
    next: Pptr<Node>,
}

/// The filter function (paper §4.5.1): tells the recovery GC exactly
/// where this type keeps its references.
unsafe impl Trace for Node {
    fn trace(&self, t: &mut Tracer<'_>) {
        t.visit_pptr(&self.next);
    }
}

fn main() {
    // init(path, size): create a fresh 16 MiB heap (in-memory pool here;
    // see `Ralloc::open_file` for the file-backed variant).
    let heap = Ralloc::create(16 << 20, RallocConfig::tracked());
    println!("created heap: {heap:?}");

    // Build a little persistent list.
    let mut head: *mut Node = std::ptr::null_mut();
    for i in 0..5u64 {
        let node = heap.malloc(std::mem::size_of::<Node>()) as *mut Node;
        assert!(!node.is_null());
        unsafe {
            (*node).value = i * i;
            (*node).next.set(head);
        }
        // The application is responsible for persisting its own data
        // (durable linearizability, paper §2.2).
        use ralloc::PersistentAllocator;
        heap.persist(node as *const u8, std::mem::size_of::<Node>());
        head = node;
    }

    // Attach it to persistent root 0 (flushed + fenced by set_root).
    heap.set_root::<Node>(0, head);

    // --- simulate a power failure -------------------------------------
    println!("simulating crash (losing everything not written back)...");
    heap.crash_simulated();

    // Dirty restart: re-register the root's type (getRoot<T> before
    // recover, as the paper requires), then run recovery.
    let _ = heap.get_root::<Node>(0);
    let stats = heap.recover();
    println!(
        "recovered: {} reachable blocks ({} bytes) in {:?}",
        stats.reachable_blocks, stats.reachable_bytes, stats.duration
    );

    // The list is intact.
    let mut cur = heap.get_root::<Node>(0);
    let mut values = Vec::new();
    while !cur.is_null() {
        unsafe {
            values.push((*cur).value);
            cur = (*cur).next.as_ptr();
        }
    }
    println!("list after recovery: {values:?}");
    assert_eq!(values, vec![16, 9, 4, 1, 0]);

    // Normal operation continues; free the list through the same API.
    let mut cur = heap.get_root::<Node>(0);
    heap.set_root::<Node>(0, std::ptr::null());
    while !cur.is_null() {
        let next = unsafe { (*cur).next.as_ptr() };
        heap.free(cur as *mut u8);
        cur = next;
    }

    // Clean shutdown: clears the dirty flag and writes everything back.
    heap.close().unwrap();
    println!("closed cleanly; a reopen would skip recovery.");
}
