//! Crash recovery in depth: crash-point injection, GC of leaked blocks,
//! and remapping the surviving image at a different address.
//!
//! ```text
//! cargo run --example crash_recovery
//! ```


use nvm::{CrashInjector, CrashPoint};
use pds::PStack;
use ralloc::{Ralloc, RallocConfig};

fn main() {
    // A heap in Tracked mode: only flushed-and-fenced cache lines survive
    // a crash, and the injector can abort at any persistence event.
    let injector = CrashInjector::new();
    let cfg = RallocConfig {
        injector: Some(injector.clone()),
        ..RallocConfig::tracked()
    };
    let heap = Ralloc::create(16 << 20, cfg);

    // A recoverable lock-free stack rooted in the heap.
    let stack = PStack::create(&heap, 0);
    for i in 0..1000 {
        stack.push(i);
    }
    println!("pushed 1000 values; stack len = {}", stack.len());

    // Leak some blocks on purpose: allocated but never attached — the
    // exact window the paper's GC-based recovery is designed for (§1).
    for _ in 0..5000 {
        let _ = heap.malloc(64);
    }
    println!("leaked 5000 unattached blocks");

    // Now crash *in the middle of* an operation: arm the injector so the
    // 3rd persistence event from now aborts the push mid-flight.
    injector.arm(3);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        stack.push(424242);
    }));
    injector.disarm();
    assert!(result.is_err() && CrashPoint::is(&*result.unwrap_err()));
    println!("crashed mid-push at an injected crash point");

    // Power failure: volatile contents (thread caches, unflushed lines,
    // in-flight push) are gone.
    heap.crash_simulated();

    // Save the crash image and remap it at a different address, like a
    // reboot that maps the DAX file elsewhere (position independence).
    let image = heap.pool().persistent_image();
    drop((stack, heap));
    let (heap, dirty) = Ralloc::from_image(&image, RallocConfig::tracked());
    assert!(dirty, "image must be flagged dirty");
    println!("remapped crash image at a new base; dirty = {dirty}");

    // getRoot<T> re-registers the filter function, then recover().
    let stack = PStack::attach(&heap, 0).expect("root survived");
    let stats = heap.recover();
    println!(
        "recovery: {} reachable blocks, {} superblocks freed, {} on partial lists, {:?}",
        stats.reachable_blocks,
        stats.free_superblocks,
        stats.partial_superblocks,
        stats.duration,
    );

    // All 1000 durable pushes survived (the interrupted one may or may
    // not, but nothing else was lost and nothing was corrupted).
    let n = stack.len();
    assert!(n == 1000 || n == 1001, "unexpected stack length {n}");
    println!("stack intact with {n} elements; leaked blocks were reclaimed by GC");

    // And the heap is fully serviceable.
    for _ in 0..1000 {
        let p = heap.malloc(64);
        assert!(!p.is_null());
        heap.free(p);
    }
    heap.close().unwrap();
    println!("done.");
}
