//! Crash recovery in depth — the kill-based path, end to end.
//!
//! Earlier revisions of this example simulated power failure inside one
//! process (an armed injector panicking at a persistence event). That
//! model still exists in `tests/recoverability.rs`, but the real harness
//! now lives in the `crashtest` crate and this example drives it: fork a
//! child that hammers a recoverable structure in a live file-backed pool
//! (`MAP_SHARED`), SIGKILL it mid-flight, reopen the file, recover, and
//! check the visibility oracles — every acked operation exactly-once
//! visible, every in-flight operation at-most-once.
//!
//! ```text
//! cargo run --example crash_recovery
//! ```
//!
//! Must stay single-threaded up to the `run_once` calls (fork safety).

use crashtest::{run_once, seed_from_env, KillSpec, RunConfig, Structure, XorShift};

fn main() {
    if !nvm::sys::available() {
        eprintln!("kill-based crash testing needs the raw syscall layer (x86_64 Linux); skipping");
        return;
    }
    let pool = std::env::temp_dir().join("crash_recovery_example.pool");
    let seed = seed_from_env();
    println!("seed = {seed:#x}  (replay with RALLOC_CRASH_SEED={seed:#x})");

    // Round 1: control run. No kill — the child completes its 4-thread
    // queue workload, the parent reopens the pool and checks that every
    // acked op is visible and nothing is duplicated or conjured.
    let mut cfg = RunConfig::new(Structure::Queue, pool.clone(), seed);
    let report = run_once(&cfg).expect("clean run must pass its oracle");
    println!(
        "control: killed={} records={} acked={} inflight={}",
        report.killed, report.records, report.acked, report.inflight
    );
    assert!(!report.killed && report.inflight == 0);

    // Round 2: deterministic kill. The child SIGKILLs itself at exactly
    // the N-th persistence event after the workload starts — same seed,
    // same N, same kill point, every time. This is how a failing sweep
    // round is replayed under a debugger. Bit-identical replay needs a
    // single workload thread (with more, the kill point is exact but the
    // interleaving around it is not).
    cfg.threads = 1;
    cfg.kill = KillSpec::Events(900);
    let a = run_once(&cfg).expect("oracle must hold after an event-count kill");
    let b = run_once(&cfg).expect("replay must also pass");
    println!(
        "event kill: killed={} records={} acked={} inflight={}",
        a.killed, a.records, a.acked, a.inflight
    );
    assert_eq!(
        (a.records, a.acked, a.inflight),
        (b.records, b.acked, b.inflight),
        "same seed + same event budget must reproduce the identical kill point"
    );
    println!("replay reproduced the identical kill point");

    // Round 3: asynchronous kills at random wall-clock offsets, across
    // the other structures — map oracles (exact last-writer state per
    // key) instead of conservation, plus the heap checker each round.
    let mut rng = XorShift::new(seed ^ 0xD15EA5E);
    for s in [Structure::Stack, Structure::Kv, Structure::NmTree, Structure::RbTree] {
        let mut cfg = RunConfig::new(s, pool.clone(), rng.next_u64() | 1);
        cfg.ops_per_thread = 60_000; // long enough that the timed kill lands mid-run
        cfg.kill = KillSpec::TimeMicros(rng.range(2_000, 60_000));
        let r = run_once(&cfg).expect("oracle must hold after a timed kill");
        println!(
            "{:>6}: killed={} setup_died={} records={} acked={} inflight={}",
            s.name(),
            r.killed,
            r.died_in_setup,
            r.records,
            r.acked,
            r.inflight
        );
    }

    crashtest::cleanup(&cfg);
    println!("done: every round recovered with its oracle green.");
}
