//! A memcached-style key-value store on a persistent allocator, driven
//! by a small YCSB-A mix — the library-database scenario of paper §6.3,
//! runnable against any of the five allocators:
//!
//! ```text
//! cargo run --release --example persistent_kv -- [ralloc|lrmalloc|makalu|pmdk|system]
//! ```
//!
//! When the allocator is ralloc, the telemetry sampler records the
//! heap's trajectory to `persistent_kv.jsonl` while the workload runs,
//! and the run phase reports per-op tail latency (p50/p99/p999) from a
//! shared telemetry histogram.

use std::time::{Duration, Instant};

use nvm::FlushModel;
use pds::KvStore;
use ralloc::{telemetry::Histogram, Ralloc, RallocConfig};
use workloads::zipf::Zipf;
use workloads::{make_allocator, AllocKind, DynAlloc};

fn main() {
    let kind = std::env::args()
        .nth(1)
        .and_then(|s| AllocKind::parse(&s))
        .unwrap_or(AllocKind::Ralloc);
    // Build ralloc directly (instead of through `make_allocator`) so we
    // keep a typed handle for the sampler; other kinds have no telemetry.
    let (alloc, heap): (DynAlloc, Option<Ralloc>) = if kind == AllocKind::Ralloc {
        let cfg = RallocConfig { flush_model: FlushModel::optane(), ..Default::default() };
        let heap = Ralloc::create(256 << 20, cfg);
        heap.start_sampler("persistent_kv.jsonl", Duration::from_millis(50))
            .expect("start sampler");
        (std::sync::Arc::new(heap.clone()), Some(heap))
    } else {
        (make_allocator(kind, 256 << 20, FlushModel::optane()), None)
    };
    println!("allocator: {}", kind.name());

    let records = 50_000u64;
    let kv = KvStore::new(alloc, (records as usize * 2).next_power_of_two());

    // Load phase.
    let t0 = Instant::now();
    let value = [0x42u8; 100];
    for k in 0..records {
        kv.set(k, &value);
    }
    println!(
        "loaded {records} records in {:?} ({:.0} Kops/s)",
        t0.elapsed(),
        records as f64 / t0.elapsed().as_secs_f64() / 1e3
    );

    // Run phase: YCSB-A (50% reads / 50% updates), zipfian keys, from
    // four client threads. Every op's latency lands in one shared
    // log2-bucketed histogram (two relaxed adds per op — cheap enough
    // to leave on).
    let zipf = Zipf::new(records, 0.99);
    let op_ns = Histogram::new();
    let ops_per_thread = 25_000u64;
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for tid in 0..4u64 {
            let kv = &kv;
            let zipf = &zipf;
            let op_ns = op_ns.clone();
            s.spawn(move || {
                let mut x = 0x243F6A88 + tid;
                let mut rand = move || {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    x
                };
                let mut buf = [0u8; 128];
                for i in 0..ops_per_thread {
                    let key = zipf.sample((rand() % 1_000_000) as f64 / 1e6);
                    let op_t0 = Instant::now();
                    if rand() % 2 == 0 {
                        let _ = kv.get_into(key, &mut buf);
                    } else {
                        // Size-cycling updates exercise item replacement.
                        let sz = 96 + (i as usize % 3) * 8;
                        kv.set(key, &buf[..sz]);
                    }
                    op_ns.observe_since(op_t0);
                }
            });
        }
    });
    let total = 4 * ops_per_thread;
    println!(
        "ran {total} YCSB-A ops in {:?} ({:.0} Kops/s)",
        t0.elapsed(),
        total as f64 / t0.elapsed().as_secs_f64() / 1e3
    );
    let lat = op_ns.snapshot();
    println!(
        "op latency ns: p50<={} p99<={} p999<={} (log2 buckets, {} ops)",
        lat.p50(),
        lat.p99(),
        lat.p999(),
        lat.count
    );
    println!("{} keys resident at the end", kv.len());
    if let Some(heap) = heap {
        heap.stop_sampler();
        println!("telemetry trajectory -> persistent_kv.jsonl");
    }
}
