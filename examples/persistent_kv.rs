//! A memcached-style key-value store on a persistent allocator, driven
//! by a small YCSB-A mix — the library-database scenario of paper §6.3,
//! runnable against any of the five allocators:
//!
//! ```text
//! cargo run --release --example persistent_kv -- [ralloc|lrmalloc|makalu|pmdk|system]
//! ```

use std::time::Instant;

use nvm::FlushModel;
use pds::KvStore;
use workloads::zipf::Zipf;
use workloads::{make_allocator, AllocKind};

fn main() {
    let kind = std::env::args()
        .nth(1)
        .and_then(|s| AllocKind::parse(&s))
        .unwrap_or(AllocKind::Ralloc);
    let alloc = make_allocator(kind, 256 << 20, FlushModel::optane());
    println!("allocator: {}", kind.name());

    let records = 50_000u64;
    let kv = KvStore::new(alloc, (records as usize * 2).next_power_of_two());

    // Load phase.
    let t0 = Instant::now();
    let value = [0x42u8; 100];
    for k in 0..records {
        kv.set(k, &value);
    }
    println!(
        "loaded {records} records in {:?} ({:.0} Kops/s)",
        t0.elapsed(),
        records as f64 / t0.elapsed().as_secs_f64() / 1e3
    );

    // Run phase: YCSB-A (50% reads / 50% updates), zipfian keys, from
    // four client threads.
    let zipf = Zipf::new(records, 0.99);
    let ops_per_thread = 25_000u64;
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for tid in 0..4u64 {
            let kv = &kv;
            let zipf = &zipf;
            s.spawn(move || {
                let mut x = 0x243F6A88 + tid;
                let mut rand = move || {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    x
                };
                let mut buf = [0u8; 128];
                for i in 0..ops_per_thread {
                    let key = zipf.sample((rand() % 1_000_000) as f64 / 1e6);
                    if rand() % 2 == 0 {
                        let _ = kv.get_into(key, &mut buf);
                    } else {
                        // Size-cycling updates exercise item replacement.
                        let sz = 96 + (i as usize % 3) * 8;
                        kv.set(key, &buf[..sz]);
                    }
                }
            });
        }
    });
    let total = 4 * ops_per_thread;
    println!(
        "ran {total} YCSB-A ops in {:?} ({:.0} Kops/s)",
        t0.elapsed(),
        total as f64 / t0.elapsed().as_secs_f64() / 1e3
    );
    println!("{} keys resident at the end", kv.len());
}
