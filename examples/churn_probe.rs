//! Footprint probe for the churn-fixpoint workload (Theorem 5.2).
//!
//! Replays `ralloc_leakage_freedom_under_churn`'s stress rounds while
//! printing per-round footprint and slow-path counters, so regressions in
//! the demand-spike levers (parked-bin warm starts, best-fit fills) show
//! up as numbers instead of a flaky red test. Used to record the probe
//! matrix in ROADMAP; run several times — the interesting signal is the
//! step *distribution* across runs.
//!
//! Usage: `cargo run --release -p suite --example churn_probe [rounds]`

use std::sync::atomic::Ordering;

use ralloc::{Ralloc, RallocConfig};
// The exact stress generator of `ralloc_leakage_freedom_under_churn`
// (tests/overlap_stress.rs) — shared, not copied, so the trajectories
// recorded here stay comparable to the test they explain.
use workloads::churn::stress;
use workloads::DynAlloc;

fn main() {
    let rounds: usize =
        std::env::args().nth(1).and_then(|v| v.parse().ok()).unwrap_or(7);
    let heap =
        Ralloc::create(64 << 20, RallocConfig { flush_half: true, ..Default::default() });
    let alloc: DynAlloc = std::sync::Arc::new(heap.clone());
    let s = heap.slow_stats();
    let mut prev = heap.used_superblocks();
    let counters: &[(&str, &std::sync::atomic::AtomicU64)] = &[
        ("carved", &s.sb_carved),
        ("scav", &s.sb_scavenged),
        ("recheck", &s.free_recheck_hits),
        ("adopts", &s.bin_adopts),
        ("parks", &s.bin_parks),
        ("bestfit", &s.fill_bestfit_probes),
        ("home", &s.partial_pops_home),
        ("steals", &s.partial_steals),
        ("fills", &s.cache_fills),
    ];
    let mut last: Vec<u64> = counters.iter().map(|_| 0).collect();
    print!("{:>5} {:>6} {:>6}", "round", "used", "step");
    for (name, _) in counters {
        print!(" {name:>8}");
    }
    println!();
    for r in 0..rounds {
        stress(&alloc, 4, 10_000);
        let used = heap.used_superblocks();
        print!("{:>5} {:>6} {:>+6}", r, used, used as i64 - prev as i64);
        for (i, (_, c)) in counters.iter().enumerate() {
            let v = c.load(Ordering::Relaxed);
            print!(" {:>8}", v - last[i]);
            last[i] = v;
        }
        println!();
        prev = used;
    }
}
