//! Footprint probe for the churn-fixpoint workload (Theorem 5.2).
//!
//! Replays `ralloc_leakage_freedom_under_churn`'s stress rounds while the
//! telemetry sampler records the footprint trajectory — committed length,
//! used superblocks, fill/flush/steal counters — as JSONL, so regressions
//! in the demand-spike levers (parked-bin warm starts, best-fit fills)
//! show up as numbers instead of a flaky red test. Used to record the
//! probe matrix in ROADMAP; run several times — the interesting signal is
//! the step *distribution* across runs.
//!
//! Usage: `cargo run --release -p suite --example churn_probe [rounds] [out.jsonl]`
//!
//! The console shows one line per round (footprint and its step); the
//! full counter trajectory lands in the JSONL file (default
//! `churn_probe.jsonl`), one snapshot per sampler tick — the same schema
//! the `RALLOC_TELEMETRY` env knob produces.

use std::time::Duration;

use ralloc::{Ralloc, RallocConfig};
// The exact stress generator of `ralloc_leakage_freedom_under_churn`
// (tests/overlap_stress.rs) — shared, not copied, so the trajectories
// recorded here stay comparable to the test they explain.
use workloads::churn::stress;
use workloads::DynAlloc;

fn main() {
    let rounds: usize =
        std::env::args().nth(1).and_then(|v| v.parse().ok()).unwrap_or(7);
    let out = std::env::args().nth(2).unwrap_or_else(|| "churn_probe.jsonl".into());
    let heap =
        Ralloc::create(64 << 20, RallocConfig { flush_half: true, ..Default::default() });
    let alloc: DynAlloc = std::sync::Arc::new(heap.clone());
    heap.start_sampler(&out, Duration::from_millis(25)).expect("start sampler");
    let mut prev = heap.used_superblocks();
    println!("{:>5} {:>6} {:>6}   (trajectory -> {out})", "round", "used", "step");
    for r in 0..rounds {
        stress(&alloc, 4, 10_000);
        let used = heap.used_superblocks();
        println!("{:>5} {:>6} {:>+6}", r, used, used as i64 - prev as i64);
        prev = used;
    }
    heap.stop_sampler();
    // Round-trip the trajectory so a broken sampler fails loudly here
    // instead of silently producing an empty artifact.
    let body = std::fs::read_to_string(&out).expect("read trajectory");
    let lines = body.lines().count();
    let mut parsed = None;
    for l in body.lines() {
        parsed = Some(telemetry::json::parse(l).expect("sampler line parses as JSON"));
    }
    let parsed = parsed.expect("at least one sample");
    println!(
        "{lines} samples; final committed_len={} fills={} steals={}",
        parsed.get("committed_len").and_then(|v| v.as_u64()).unwrap_or(0),
        parsed.get("fills").and_then(|v| v.as_u64()).unwrap_or(0),
        parsed.get("steals").and_then(|v| v.as_u64()).unwrap_or(0),
    );
}
