//! The prod-con workload (paper Fig. 5d) as a standalone demo: pairs of
//! threads moving allocator-backed objects through lock-free
//! Michael–Scott queues, with a side-by-side allocator comparison.
//!
//! ```text
//! cargo run --release --example producer_consumer -- [threads] [objects]
//! ```

use std::time::Instant;

use nvm::FlushModel;
use pds::MsQueue;
use ralloc::PersistentAllocator;
use workloads::{make_allocator, AllocKind};

fn main() {
    let threads: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(4);
    let objects: usize = std::env::args().nth(2).and_then(|s| s.parse().ok()).unwrap_or(100_000);
    let pairs = (threads / 2).max(1);
    let per_pair = objects / pairs;
    println!("{pairs} producer/consumer pair(s), {per_pair} 64 B objects each\n");
    println!("{:<10} {:>12} {:>14}", "allocator", "seconds", "objs/sec");

    for kind in AllocKind::all() {
        let alloc = make_allocator(kind, 512 << 20, FlushModel::optane());
        let t0 = Instant::now();
        std::thread::scope(|s| {
            for _ in 0..pairs {
                let queue = std::sync::Arc::new(MsQueue::new(alloc.clone()));
                // Producer: allocate, initialize, publish.
                {
                    let queue = queue.clone();
                    let alloc = alloc.clone();
                    s.spawn(move || {
                        for i in 0..per_pair {
                            let obj = alloc.malloc(64);
                            assert!(!obj.is_null());
                            // SAFETY: fresh 64-byte block.
                            unsafe { std::ptr::write(obj as *mut u64, i as u64) };
                            while !queue.enqueue(obj as u64) {
                                std::hint::spin_loop();
                            }
                        }
                    });
                }
                // Consumer: consume, verify, deallocate.
                {
                    let alloc = alloc.clone();
                    s.spawn(move || {
                        let mut got = 0;
                        while got < per_pair {
                            if let Some(addr) = queue.dequeue() {
                                let obj = addr as *mut u8;
                                // SAFETY: written by the producer.
                                let v = unsafe { std::ptr::read(obj as *const u64) };
                                assert!(v < per_pair as u64);
                                alloc.free(obj);
                                got += 1;
                            } else {
                                std::hint::spin_loop();
                            }
                        }
                    });
                }
            }
        });
        let dt = t0.elapsed();
        println!(
            "{:<10} {:>12.4} {:>14.0}",
            kind.name(),
            dt.as_secs_f64(),
            (pairs * per_pair) as f64 / dt.as_secs_f64()
        );
    }
}
