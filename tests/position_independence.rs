//! Position independence (paper §4.6): a heap image must be fully usable
//! when mapped at a different virtual address — no absolute pointers may
//! survive in persistent data or reconstructable metadata.

use pds::{NmTree, PStack};
use ralloc::{Pptr, Ralloc, RallocConfig, Trace, Tracer};

/// Reopen a heap image in a fresh pool (the new pool's base address is a
/// fresh allocation, so it differs from the old one in practice; the
/// test also asserts that it does).
fn remap(heap: &Ralloc, cfg: RallocConfig) -> (Ralloc, bool, bool) {
    let old_base = heap.pool().base() as usize;
    let image = heap.pool().persistent_image();
    let (heap2, dirty) = Ralloc::from_image(&image, cfg);
    let moved = heap2.pool().base() as usize != old_base;
    (heap2, dirty, moved)
}

#[test]
fn pptr_list_survives_remap_after_clean_close() {
    #[repr(C)]
    struct Node {
        value: u64,
        next: Pptr<Node>,
    }
    unsafe impl Trace for Node {
        fn trace(&self, t: &mut Tracer<'_>) {
            t.visit_pptr(&self.next);
        }
    }

    let heap = Ralloc::create(8 << 20, RallocConfig::default());
    let mut head: *mut Node = std::ptr::null_mut();
    for i in 0..200u64 {
        let n = heap.malloc(std::mem::size_of::<Node>()) as *mut Node;
        // SAFETY: fresh node block.
        unsafe {
            (*n).value = i;
            (*n).next.set(head);
        }
        head = n;
    }
    heap.set_root::<Node>(0, head);
    heap.close().unwrap();

    let (heap2, dirty, moved) = remap(&heap, RallocConfig::default());
    assert!(!dirty);
    assert!(moved, "fresh pool should land at a different base");
    drop(heap);

    let mut cur = heap2.get_root::<Node>(0);
    let mut count = 0u64;
    while !cur.is_null() {
        // SAFETY: list reconstructed from the image.
        unsafe {
            assert_eq!((*cur).value, 199 - count);
            cur = (*cur).next.as_ptr();
        }
        count += 1;
    }
    assert_eq!(count, 200);
    // The remapped heap allocates and frees normally.
    let p = heap2.malloc(64);
    assert!(!p.is_null());
    heap2.free(p);
}

#[test]
fn dirty_image_recovers_at_new_base() {
    let heap = Ralloc::create(16 << 20, RallocConfig::tracked());
    let stack = PStack::create(&heap, 3);
    for i in 0..500 {
        stack.push(i * 2);
    }
    // No close: dirty restart with GC at the new address.
    let (heap2, dirty, _moved) = remap(&heap, RallocConfig::tracked());
    assert!(dirty);
    drop((stack, heap));
    // Register the filter function *before* recovery, as the paper
    // requires (getRoot<T> precedes recover()); the packed counted head
    // word carries no pptr tag, so conservative tracing cannot follow it.
    let stack = PStack::attach(&heap2, 3).unwrap();
    let stats = heap2.recover();
    assert_eq!(stats.reachable_blocks, 501);
    assert_eq!(stack.len(), 500);
    assert_eq!(stack.pop(), Some(998));
}

#[test]
fn nm_tree_survives_double_remap() {
    // Two consecutive remaps: offsets must not accumulate error.
    let heap = Ralloc::create(16 << 20, RallocConfig::tracked());
    let tree = NmTree::create(&heap, 0);
    for k in 0..200u64 {
        tree.insert(k * 7 % 1009, k);
    }
    drop(tree);
    let (heap2, dirty, _) = remap(&heap, RallocConfig::tracked());
    assert!(dirty);
    drop(heap);
    // attach registers the NmNode filter before recovery (paper order).
    let tree2 = NmTree::attach(&heap2, 0).unwrap();
    heap2.recover();
    let keys_after_first = tree2.keys();
    // Mutate at the new base, then remap again.
    tree2.insert(5000, 1);
    drop(tree2);
    let (heap3, _, _) = remap(&heap2, RallocConfig::tracked());
    drop(heap2);
    let tree3 = NmTree::attach(&heap3, 0).unwrap();
    heap3.recover();
    let mut expect = keys_after_first;
    expect.push(5000);
    expect.sort_unstable();
    assert_eq!(tree3.keys(), expect);
}

#[test]
fn file_round_trip_preserves_heap() {
    let dir = std::env::temp_dir().join(format!("ralloc-pi-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("heap.img");

    {
        let (heap, dirty) = Ralloc::open_file(&path, 8 << 20, RallocConfig::default()).unwrap();
        assert!(!dirty, "fresh file");
        let p = heap.malloc(64) as *mut u64;
        // SAFETY: fresh block.
        unsafe { *p = 0xFEED_FACE };
        heap.set_root::<u64>(0, p);
        heap.close().unwrap();
    }
    {
        let (heap, dirty) = Ralloc::open_file(&path, 8 << 20, RallocConfig::default()).unwrap();
        assert!(!dirty, "clean restart");
        let p = heap.get_root::<u64>(0);
        assert!(!p.is_null());
        // SAFETY: recovered root target.
        unsafe { assert_eq!(*p, 0xFEED_FACE) };
        // Exit WITHOUT close: next open must report dirty.
        heap.pool().save(&path).unwrap();
    }
    {
        let (heap, dirty) = Ralloc::open_file(&path, 8 << 20, RallocConfig::default()).unwrap();
        assert!(dirty, "unclean shutdown must be detected");
        let _ = heap.get_root::<u64>(0);
        let stats = heap.recover();
        assert_eq!(stats.reachable_blocks, 1);
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn riv_pointers_link_two_heaps() {
    // The paper's §4.6 near-term plan: cross-heap references via
    // Region-ID-in-Value pointers, 64 bits, resolved through a per-run
    // region table. Two heaps, a node in each, linked both ways.
    use pptr::RivPtr;

    let heap_a = Ralloc::create(4 << 20, RallocConfig::default());
    let heap_b = Ralloc::create(4 << 20, RallocConfig::default());
    heap_a.register_riv_region(100);
    heap_b.register_riv_region(101);

    #[repr(C)]
    struct XNode {
        value: u64,
        peer_raw: u64, // RivPtr<XNode> raw bits, stored persistently
    }

    let a = heap_a.malloc(std::mem::size_of::<XNode>()) as *mut XNode;
    let b = heap_b.malloc(std::mem::size_of::<XNode>()) as *mut XNode;
    // SAFETY: fresh blocks.
    unsafe {
        (*a).value = 1;
        (*a).peer_raw = RivPtr::<XNode>::from_addr(b as usize).raw();
        (*b).value = 2;
        (*b).peer_raw = RivPtr::<XNode>::from_addr(a as usize).raw();
    }

    // Follow a -> b -> a across the heap boundary.
    // SAFETY: both nodes live.
    unsafe {
        let pb = RivPtr::<XNode>::from_raw((*a).peer_raw).as_ptr().unwrap();
        assert_eq!((*pb).value, 2);
        let pa = RivPtr::<XNode>::from_raw((*pb).peer_raw).as_ptr().unwrap();
        assert_eq!(pa, a);
    }

    // Remap heap B at a new base: the *same raw bits* must resolve to the
    // new mapping once the region is re-registered.
    heap_b.close().unwrap();
    let image = heap_b.pool().persistent_image();
    let b_off = b as usize - heap_b.region_base();
    drop(heap_b);
    let (heap_b2, _) = Ralloc::from_image(&image, RallocConfig::default());
    heap_b2.register_riv_region(101);
    // SAFETY: node a still live; region table now points at the new base.
    unsafe {
        let pb = RivPtr::<XNode>::from_raw((*a).peer_raw).as_ptr().unwrap();
        assert_eq!(pb as usize, heap_b2.region_base() + b_off);
        assert_eq!((*pb).value, 2);
    }
    pptr::REGIONS.unregister(100);
    pptr::REGIONS.unregister(101);
}
