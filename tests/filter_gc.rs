//! Filter functions versus conservative collection (paper §4.5.1).
//!
//! Three properties: (1) filters and conservative tracing agree on
//! well-formed pptr structures; (2) filters handle nonstandard pointer
//! representations that conservative scanning cannot see; (3) filters
//! avoid the false-positive retention that conservative scanning is
//! vulnerable to.

use ralloc::{Pptr, Ralloc, RallocConfig, Trace, Tracer};

#[repr(C)]
struct Node {
    value: u64,
    next: Pptr<Node>,
}

unsafe impl Trace for Node {
    fn trace(&self, t: &mut Tracer<'_>) {
        t.visit_pptr(&self.next);
    }
}

fn build_pptr_list(heap: &Ralloc, root: usize, n: usize) {
    let mut head: *mut Node = std::ptr::null_mut();
    for i in 0..n as u64 {
        let p = heap.malloc(std::mem::size_of::<Node>()) as *mut Node;
        // SAFETY: fresh block.
        unsafe {
            (*p).value = i;
            (*p).next.set(head);
        }
        head = p;
    }
    heap.set_root::<Node>(root, head);
}

#[test]
fn filter_and_conservative_agree_on_pptr_structures() {
    let heap_a = Ralloc::create(8 << 20, RallocConfig::default());
    build_pptr_list(&heap_a, 0, 500);
    let with_filter = heap_a.recover();

    let heap_b = Ralloc::create(8 << 20, RallocConfig::default());
    build_pptr_list(&heap_b, 0, 500);
    heap_b.clear_root_filter(0);
    let conservative = heap_b.recover();

    assert_eq!(with_filter.reachable_blocks, conservative.reachable_blocks);
    assert_eq!(with_filter.conservative_words_scanned, 0);
    assert!(conservative.conservative_words_scanned > 0);
}

#[test]
fn filters_handle_nonstandard_pointer_representations() {
    // A node that stores its link XOR-obfuscated: conservative scanning
    // can never follow it (no tag pattern), but a filter function can —
    // the paper's generality argument for filters.
    #[repr(C)]
    struct Weird {
        value: u64,
        scrambled_off1: u64, // (region offset + 1) ^ 0xDEADBEEF; 0 = null
    }
    const MASK: u64 = 0xDEAD_BEEF;
    unsafe impl Trace for Weird {
        fn trace(&self, t: &mut Tracer<'_>) {
            if self.scrambled_off1 != 0 {
                let off1 = self.scrambled_off1 ^ MASK;
                t.visit_region_offset::<Weird>(off1 - 1);
            }
        }
    }

    let heap = Ralloc::create(8 << 20, RallocConfig::default());
    let rb = heap.region_base();
    let mut head: *mut Weird = std::ptr::null_mut();
    for i in 0..100u64 {
        let p = heap.malloc(std::mem::size_of::<Weird>()) as *mut Weird;
        // SAFETY: fresh block.
        unsafe {
            (*p).value = i;
            (*p).scrambled_off1 = if head.is_null() {
                0
            } else {
                ((head as usize - rb) as u64 + 1) ^ MASK
            };
        }
        head = p;
    }
    heap.set_root::<Weird>(0, head);
    let stats = heap.recover();
    assert_eq!(stats.reachable_blocks, 100, "filter must chase scrambled links");

    // Sanity: with the filter dropped, conservative tracing only keeps
    // the root node (scrambled links are invisible).
    heap.clear_root_filter(0);
    let stats = heap.recover();
    assert_eq!(stats.reachable_blocks, 1, "conservative must not see scrambled links");
}

#[test]
fn filters_avoid_conservative_false_positives() {
    // A "data" node whose payload happens to contain a perfectly tagged
    // pptr bit pattern aimed at a garbage block. Conservative scanning
    // retains the garbage (a paper-sanctioned leak); the filter knows the
    // field is plain data and lets GC reclaim it.
    #[repr(C)]
    struct DataNode {
        looks_like_pointer: u64,
        next: Pptr<DataNode>,
    }
    unsafe impl Trace for DataNode {
        fn trace(&self, t: &mut Tracer<'_>) {
            t.visit_pptr(&self.next); // deliberately NOT the data field
        }
    }

    let build = |heap: &Ralloc| {
        let garbage = heap.malloc(64); // never attached anywhere
        let node = heap.malloc(std::mem::size_of::<DataNode>()) as *mut DataNode;
        // SAFETY: fresh blocks.
        unsafe {
            let field_addr = &(*node).looks_like_pointer as *const u64 as usize;
            (*node).looks_like_pointer = Pptr::<u8>::encode(field_addr, garbage as usize);
            (*node).next.set(std::ptr::null());
        }
        heap.set_root::<DataNode>(0, node);
    };

    let heap = Ralloc::create(8 << 20, RallocConfig::default());
    build(&heap);
    let with_filter = heap.recover();
    assert_eq!(with_filter.reachable_blocks, 1, "filter: only the node survives");

    let heap = Ralloc::create(8 << 20, RallocConfig::default());
    build(&heap);
    heap.clear_root_filter(0);
    let conservative = heap.recover();
    assert_eq!(
        conservative.reachable_blocks, 2,
        "conservative: the decoy pattern retains the garbage block"
    );
    assert!(conservative.conservative_candidates >= 1);
}

#[test]
fn untagged_integers_never_retain_blocks() {
    // Plain integers, float bit patterns, and small addresses must never
    // be mistaken for references by the conservative scanner thanks to
    // the 0xA5A5 tag (paper §4.6).
    let heap = Ralloc::create(8 << 20, RallocConfig::default());
    let victim = heap.malloc(64); // garbage block the noise could fake
    let node = heap.malloc(512);
    // SAFETY: fresh 512-byte block.
    unsafe {
        let words = node as *mut u64;
        for i in 0..64 {
            std::ptr::write(words.add(i), victim as u64 + i as u64); // untagged addresses
        }
        std::ptr::write(words.add(10), f64::to_bits(3.75));
        std::ptr::write(words.add(11), u64::MAX);
        std::ptr::write(words.add(12), 42);
    }
    heap.set_root_raw(0, node); // conservative root
    let stats = heap.recover();
    assert_eq!(stats.reachable_blocks, 1, "only the scanned node itself survives");
    assert_eq!(stats.conservative_candidates, 0);
}

#[test]
fn mixed_typed_and_conservative_roots() {
    let heap = Ralloc::create(8 << 20, RallocConfig::default());
    build_pptr_list(&heap, 0, 50); // typed root
    // Conservative root: block containing tagged pptrs to two children.
    let parent = heap.malloc(64);
    let c1 = heap.malloc(64);
    let c2 = heap.malloc(64);
    // SAFETY: fresh blocks.
    unsafe {
        let w = parent as *mut u64;
        std::ptr::write(w, Pptr::<u8>::encode(w as usize, c1 as usize));
        std::ptr::write(w.add(1), Pptr::<u8>::encode(w.add(1) as usize, c2 as usize));
        std::ptr::write_bytes(c1, 0, 64);
        std::ptr::write_bytes(c2, 0, 64);
    }
    heap.set_root_raw(1, parent);
    let stats = heap.recover();
    assert_eq!(stats.reachable_blocks, 50 + 3);
}
