//! Cross-crate integration: every data structure on every allocator it
//! supports, through the shared `PersistentAllocator` trait — the same
//! composition the benchmark harness uses.

use nvm::FlushModel;
use pds::{KvStore, MsQueue, RbTree};
use ralloc::PersistentAllocator;
use workloads::{make_allocator, AllocKind};

#[test]
fn queue_on_every_allocator() {
    for kind in AllocKind::all() {
        let a = make_allocator(kind, 32 << 20, FlushModel::free());
        let q = MsQueue::new(a);
        for i in 0..5_000u64 {
            assert!(q.enqueue(i), "{kind:?}");
        }
        for i in 0..5_000u64 {
            assert_eq!(q.dequeue(), Some(i), "{kind:?}");
        }
        assert_eq!(q.dequeue(), None);
    }
}

#[test]
fn rbtree_on_every_allocator() {
    for kind in AllocKind::all() {
        let a = make_allocator(kind, 32 << 20, FlushModel::free());
        let mut t = RbTree::new(a);
        for k in 0..1_000u64 {
            t.insert(k.wrapping_mul(2654435761) % 4096, k);
        }
        t.validate();
        let keys = t.keys();
        for &k in keys.iter().step_by(3) {
            assert!(t.remove(k).is_some(), "{kind:?}");
        }
        t.validate();
    }
}

#[test]
fn kvstore_on_every_allocator() {
    for kind in AllocKind::all() {
        let a = make_allocator(kind, 64 << 20, FlushModel::free());
        let kv = KvStore::new(a, 256);
        for k in 0..2_000u64 {
            kv.set(k, &k.to_le_bytes());
        }
        for k in 0..2_000u64 {
            assert_eq!(kv.get(k).unwrap(), k.to_le_bytes(), "{kind:?}");
        }
        // Size-changing updates exercise the realloc path.
        for k in 0..500u64 {
            kv.set(k, &[1u8; 200]);
        }
        for k in 0..500u64 {
            assert_eq!(kv.get(k).unwrap().len(), 200, "{kind:?}");
        }
    }
}

#[test]
fn flush_accounting_separates_the_allocators() {
    // The quantitative heart of the paper: flushes per malloc/free pair.
    // Ralloc ~0 (amortized), Makalu >= 2 (alloc byte on both ops),
    // PMDK >= 8 (log + list + header + dest on both ops).
    let ops = 2_000usize;

    let ralloc = ralloc::Ralloc::create(64 << 20, ralloc::RallocConfig::default());
    let warm: Vec<_> = (0..64).map(|_| ralloc.malloc(64)).collect();
    for p in warm {
        ralloc.free(p);
    }
    let f0 = ralloc.pool().stats().fences();
    for _ in 0..ops {
        let p = ralloc.malloc(64);
        ralloc.free(p);
    }
    let ralloc_fpo = (ralloc.pool().stats().fences() - f0) as f64 / ops as f64;

    let makalu = baselines::MakaluSim::create(64 << 20, nvm::Mode::Direct, FlushModel::free());
    let warm: Vec<_> = (0..64).map(|_| makalu.malloc(64)).collect();
    for p in warm {
        makalu.free(p);
    }
    let f0 = makalu.pool().stats().fences();
    for _ in 0..ops {
        let p = makalu.malloc(64);
        makalu.free(p);
    }
    let makalu_fpo = (makalu.pool().stats().fences() - f0) as f64 / ops as f64;

    let pmdk = baselines::PmdkSim::create(64 << 20, nvm::Mode::Direct, FlushModel::free());
    let warm: Vec<_> = (0..64).map(|_| pmdk.malloc(64)).collect();
    for p in warm {
        pmdk.free(p);
    }
    let f0 = pmdk.pool().stats().fences();
    for _ in 0..ops {
        let p = pmdk.malloc(64);
        pmdk.free(p);
    }
    let pmdk_fpo = (pmdk.pool().stats().fences() - f0) as f64 / ops as f64;

    assert!(ralloc_fpo < 0.1, "Ralloc fences/op = {ralloc_fpo} (should be ~0)");
    assert!(makalu_fpo >= 1.9, "Makalu fences/op = {makalu_fpo} (should be >= 2)");
    assert!(pmdk_fpo >= 6.0, "PMDK fences/op = {pmdk_fpo} (should be >= 6)");
    assert!(
        pmdk_fpo > makalu_fpo && makalu_fpo > ralloc_fpo,
        "persistence-cost ordering violated: {ralloc_fpo} {makalu_fpo} {pmdk_fpo}"
    );
}
