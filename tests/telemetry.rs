//! Integration tests for the unified telemetry subsystem: the heap-level
//! contracts that the unit tests inside `crates/telemetry` cannot see —
//! zero telemetry CAS on the real malloc/free fast path, protocol
//! ordering in the event journal, exporter round-trips through the
//! `Ralloc` API, and the sampler soak that CI uploads as its smoke
//! artifact (`TELEMETRY_SMOKE_OUT` redirects the JSONL).

use std::sync::Arc;
use std::time::Duration;

use ralloc::{Ralloc, RallocConfig};
use telemetry::json;
use workloads::churn::stress;
use workloads::DynAlloc;

fn small_heap() -> Ralloc {
    Ralloc::create(32 << 20, RallocConfig::default())
}

/// The headline fast-path contract: a malloc/free storm on a warmed-up
/// heap performs zero compare-and-swap operations *inside the telemetry
/// crate*. (The allocator itself still CASes on anchors — the claim is
/// that observability adds none.)
#[test]
fn fast_path_performs_zero_telemetry_cas() {
    let heap = small_heap();
    // Warm the thread cache so the loop below stays on the fast path.
    let warm: Vec<*mut u8> = (0..64).map(|_| heap.malloc(64)).collect();
    for p in warm {
        heap.free(p);
    }
    let cas0 = telemetry::cas_ops();
    for _ in 0..10_000 {
        let p = heap.malloc(64);
        assert!(!p.is_null());
        heap.free(p);
    }
    assert_eq!(
        telemetry::cas_ops() - cas0,
        0,
        "telemetry must not add CAS to the malloc/free fast path"
    );
}

/// `Ralloc::telemetry_snapshot` parses as JSON and carries the heap and
/// pmem registries plus the journal — the exporter round-trip at the API
/// surface users actually call.
#[test]
fn telemetry_snapshot_round_trips_through_parser() {
    let heap = small_heap();
    let ptrs: Vec<*mut u8> = (0..500).map(|_| heap.malloc(64)).collect();
    for p in ptrs {
        heap.free(p);
    }
    let snap = heap.telemetry_snapshot();
    let v = json::parse(&snap).expect("snapshot must be valid JSON");
    assert!(v.get("t_ms").and_then(|t| t.as_u64()).is_some());
    assert!(v.get("committed_len").and_then(|c| c.as_u64()).unwrap() > 0);
    let heap_reg = v.get("registries").and_then(|r| r.get("heap")).expect("heap scope");
    assert!(
        heap_reg.get("cache_fills").and_then(|c| c.as_u64()).unwrap() >= 1,
        "allocating 500 blocks must have filled the cache at least once"
    );
    let pmem = v.get("registries").and_then(|r| r.get("pmem")).expect("pmem scope");
    assert!(pmem.get("flush_lines").and_then(|c| c.as_u64()).is_some());
    let journal = v.get("journal").and_then(|j| j.as_array()).expect("journal array");
    assert!(!journal.is_empty(), "carve/fill events must be resident");
    for ev in journal {
        assert!(ev.get("seq").and_then(|s| s.as_u64()).is_some());
        assert!(ev.get("kind").and_then(|k| k.as_str()).is_some());
    }
}

/// The Prometheus dump exposes every registered counter under the scope
/// prefix with well-formed `# TYPE` headers and histogram series.
#[test]
fn prometheus_dump_is_well_formed() {
    let heap = small_heap();
    let p = heap.malloc(128);
    heap.free(p);
    heap.recover(); // populates the recovery_duration_ns histogram
    let dump = heap.telemetry_prometheus();
    assert!(dump.contains("# TYPE heap_cache_fills counter\n"));
    assert!(dump.contains("# TYPE pmem_flush_lines counter\n"));
    assert!(dump.contains("# TYPE heap_recovery_duration_ns histogram\n"));
    assert!(dump.contains("heap_recovery_duration_ns_bucket{le=\"+Inf\"} 1\n"));
    assert!(dump.contains("heap_recovery_duration_ns_count 1\n"));
    // Every non-comment line is `name[{labels}] value`.
    for line in dump.lines().filter(|l| !l.starts_with('#') && !l.is_empty()) {
        let mut parts = line.rsplitn(2, ' ');
        let value = parts.next().unwrap();
        assert!(
            value.parse::<f64>().is_ok(),
            "prometheus line must end in a number: {line:?}"
        );
        assert!(parts.next().is_some());
    }
}

/// Grow protocol ordering: every `grow_publish` in the journal is
/// preceded by a `grow_commit` of at least the published length — the
/// crash-safety invariant (persist the frontier word before exposing the
/// space) replayed from the event trace.
#[test]
fn journal_orders_grow_commit_before_publish() {
    let heap = Ralloc::create(
        64 << 20,
        RallocConfig { initial_capacity: Some(4 << 20), ..Default::default() },
    );
    // Outgrow the initial commit so the frontier must move.
    let ptrs: Vec<*mut u8> = (0..3000).map(|_| heap.malloc(4096)).collect();
    for p in ptrs {
        heap.free(p);
    }
    let events = heap.journal().snapshot();
    let grows: Vec<_> = events
        .iter()
        .filter(|e| {
            matches!(e.kind, telemetry::EventKind::GrowCommit | telemetry::EventKind::GrowPublish)
        })
        .collect();
    assert!(
        grows.iter().any(|e| e.kind == telemetry::EventKind::GrowPublish),
        "workload must have grown the heap"
    );
    for (i, e) in grows.iter().enumerate() {
        if e.kind == telemetry::EventKind::GrowPublish {
            assert!(
                grows[..i]
                    .iter()
                    .any(|c| c.kind == telemetry::EventKind::GrowCommit && c.a >= e.a),
                "publish of {} has no earlier commit covering it",
                e.a
            );
        }
    }
    // Timestamps are monotone in seq order (shared clock origin).
    assert!(events.windows(2).all(|w| w[0].t_ns <= w[1].t_ns));
}

/// Recovery journals its reconcile → sweep → splice phases in order and
/// publishes the last-recovery gauges onto the heap registry.
#[test]
fn recovery_phases_are_journaled_and_gauged() {
    let heap = small_heap();
    let keep = heap.malloc(64);
    assert!(!keep.is_null());
    let stats = heap.recover();
    use telemetry::EventKind::{RecoveryReconcile, RecoverySplice, RecoverySweep};
    let events = heap.journal().snapshot();
    let seq_of = |k| events.iter().find(|e| e.kind == k).map(|e| e.seq);
    let (rec, sweep, splice) = (
        seq_of(RecoveryReconcile).expect("reconcile journaled"),
        seq_of(RecoverySweep).expect("sweep journaled"),
        seq_of(RecoverySplice).expect("splice journaled"),
    );
    assert!(rec < sweep && sweep < splice, "phases out of order: {rec} {sweep} {splice}");
    let reg = heap.telemetry();
    assert_eq!(reg.gauge("recovery_threads").get(), stats.threads as i64);
    assert_eq!(
        reg.gauge("recovery_free_superblocks").get(),
        stats.free_superblocks as i64
    );
    assert_eq!(reg.histogram("recovery_duration_ns").snapshot().count, 1);
}

/// The CI smoke: run the churn workload with the sampler on, then assert
/// the JSONL trajectory parses, carries the mandatory series, and the
/// cumulative counters are monotone. `TELEMETRY_SMOKE_OUT` names the
/// output file (CI uploads it as an artifact); defaults to a temp path.
#[test]
fn sampler_soak_produces_parseable_monotone_jsonl() {
    let out = std::env::var("TELEMETRY_SMOKE_OUT").unwrap_or_else(|_| {
        std::env::temp_dir()
            .join(format!("ralloc_telemetry_smoke_{}.jsonl", std::process::id()))
            .to_string_lossy()
            .into_owned()
    });
    let heap =
        Ralloc::create(64 << 20, RallocConfig { flush_half: true, ..Default::default() });
    heap.start_sampler(&out, Duration::from_millis(5)).expect("start sampler");
    let alloc: DynAlloc = Arc::new(heap.clone());
    for _ in 0..3 {
        stress(&alloc, 4, 10_000);
    }
    heap.stop_sampler();

    let body = std::fs::read_to_string(&out).expect("sampler wrote the trajectory");
    let lines: Vec<&str> = body.lines().collect();
    assert!(lines.len() >= 2, "expected multiple samples, got {}", lines.len());
    const MANDATORY: &[&str] =
        &["t_ms", "heap_id", "committed_len", "used_sb", "fills", "flushes", "steals"];
    const MONOTONE: &[&str] = &["t_ms", "fills", "fill_blocks", "flushes", "steals", "carved"];
    let mut last = vec![0u64; MONOTONE.len()];
    for line in &lines {
        let v = json::parse(line).expect("every sampler line is one JSON object");
        for key in MANDATORY {
            assert!(
                v.get(key).and_then(|x| x.as_u64()).is_some(),
                "mandatory series {key:?} missing in {line:?}"
            );
        }
        for (i, key) in MONOTONE.iter().enumerate() {
            let x = v.get(key).and_then(|x| x.as_u64()).unwrap();
            assert!(x >= last[i], "{key} went backwards: {} -> {x}", last[i]);
            last[i] = x;
        }
        assert!(v.get("committed_len").and_then(|x| x.as_u64()).unwrap() > 0);
        assert!(v.get("steal_rate").and_then(|x| x.as_f64()).is_some());
    }
    // The churn workload must actually have moved the counters.
    let final_line = json::parse(lines.last().unwrap()).unwrap();
    assert!(final_line.get("fills").and_then(|x| x.as_u64()).unwrap() > 0);
    assert!(final_line.get("flushes").and_then(|x| x.as_u64()).unwrap() > 0);
    if std::env::var("TELEMETRY_SMOKE_OUT").is_err() {
        let _ = std::fs::remove_file(&out);
    }
}
