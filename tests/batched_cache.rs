//! The batched thread-cache fast path under crashes and remote frees.
//!
//! The cache bins are transient and filled/flushed in superblock-sized
//! batches; two things must survive that design:
//!
//! 1. **Crash during a batched fill** — a thread that reserved a whole
//!    batch with one anchor CAS and has consumed only part of it holds
//!    the rest in DRAM. A crash forgets the bin, and the reserving CAS
//!    marked the superblock FULL, so nothing in NVM records those blocks
//!    as free. The tracing GC must reclaim every one of them.
//! 2. **Remote (cross-thread) frees** — blocks allocated by one thread
//!    and freed by another accumulate in the freeing thread's bins and
//!    return to their *home* superblocks in batches. No block may be
//!    lost or double-issued across that round trip.

use ralloc::{check_heap, Pptr, Ralloc, RallocConfig, Trace, Tracer};
use std::sync::atomic::Ordering;

#[repr(C)]
struct Node {
    value: u64,
    next: Pptr<Node>,
}

unsafe impl Trace for Node {
    fn trace(&self, t: &mut Tracer<'_>) {
        t.visit_pptr(&self.next);
    }
}

/// Build an `n`-node rooted list, persisting each node like a durably
/// linearizable application would.
fn build_list(heap: &Ralloc, root: usize, n: usize) {
    let mut head: *mut Node = std::ptr::null_mut();
    for i in 0..n as u64 {
        let p = heap.malloc(std::mem::size_of::<Node>()) as *mut Node;
        assert!(!p.is_null());
        // SAFETY: fresh block.
        unsafe {
            (*p).value = i;
            (*p).next.set(head);
        }
        let off = p as usize - heap.pool().base() as usize;
        heap.pool().persist(off, std::mem::size_of::<Node>());
        head = p;
    }
    heap.set_root::<Node>(root, head);
}

fn list_len(heap: &Ralloc, root: usize) -> usize {
    let mut n = 0;
    let mut cur = heap.get_root::<Node>(root);
    while !cur.is_null() {
        n += 1;
        // SAFETY: recovered list nodes.
        cur = unsafe { (*cur).next.as_ptr() };
    }
    n
}

#[test]
fn crash_during_batched_fill_reclaims_partially_consumed_batch() {
    let heap = Ralloc::create(8 << 20, RallocConfig::tracked());
    build_list(&heap, 0, 25);
    // Trigger a fill of a whole fresh superblock (1024 × 64 B) and
    // consume only 7 blocks of the batch; the bin holds the other 1017,
    // visible nowhere in NVM (the fill's single CAS marked the
    // superblock FULL).
    let held: Vec<*mut u8> = (0..7).map(|_| heap.malloc(64)).collect();
    assert!(held.iter().all(|p| !p.is_null()));
    assert!(heap.slow_stats().avg_fill_batch() > 100.0, "fill was not batched");
    let used_before = heap.used_superblocks();

    heap.crash_simulated();
    let stats = heap.recover();

    // Only the rooted list survives: the 7 consumed blocks were never
    // rooted and the 1017 cached blocks died with the bin.
    assert_eq!(stats.reachable_blocks, 25, "exactly the rooted nodes survive");
    assert_eq!(list_len(&heap, 0), 25);
    assert_eq!(
        stats.free_superblocks + stats.partial_superblocks + stats.full_superblocks,
        used_before,
        "recovery must account for every carved superblock"
    );
    let report = check_heap(&heap);
    assert!(report.is_consistent(), "{:?}", report.violations);

    // No leaks: the whole 64 B class population (minus nothing — the
    // cached batch was reclaimed) is allocatable without carving new
    // superblocks.
    let mut got = Vec::new();
    for _ in 0..1024 {
        let p = heap.malloc(64);
        assert!(!p.is_null());
        got.push(p);
    }
    assert_eq!(heap.used_superblocks(), used_before, "cached blocks leaked: heap grew");
    for p in got {
        heap.free(p);
    }
}

#[test]
fn crash_with_no_roots_reclaims_everything_including_bins() {
    let heap = Ralloc::create(8 << 20, RallocConfig::tracked());
    // A partially consumed batch AND a partially flushed bin: allocate
    // across two superblocks, free a bin-full so one batch went back,
    // keep the rest cached, then crash.
    let ptrs: Vec<*mut u8> = (0..1500).map(|_| heap.malloc(64)).collect();
    assert!(ptrs.iter().all(|p| !p.is_null()));
    for &p in &ptrs[..1100] {
        heap.free(p); // fills the bin past capacity: one bulk flush
    }
    assert!(heap.slow_stats().cache_flushes.load(Ordering::Relaxed) >= 1);
    let used = heap.used_superblocks();

    heap.crash_simulated();
    let stats = heap.recover();

    assert_eq!(stats.reachable_blocks, 0, "nothing was rooted");
    assert_eq!(
        stats.free_superblocks, used,
        "every superblock must return to the free list (no leaked cache blocks)"
    );
    assert!(check_heap(&heap).is_consistent());
}

#[test]
fn recovery_is_idempotent_after_crash_during_fill() {
    // Shrink off: the test recovers twice and compares sweep statistics;
    // the first recovery's end-of-recovery shrink would release the
    // fully-freed trailing superblock and lower `used` between runs.
    let heap = Ralloc::create(
        8 << 20,
        RallocConfig { shrink_policy: ralloc::ShrinkPolicy::Off, ..RallocConfig::tracked() },
    );
    build_list(&heap, 3, 40);
    let _ = heap.malloc(64); // partially consumed batch in the bin
    heap.crash_simulated();
    let s1 = heap.recover();
    let s2 = heap.recover();
    assert_eq!(s1.reachable_blocks, s2.reachable_blocks);
    assert_eq!(s1.free_superblocks, s2.free_superblocks);
    assert_eq!(s1.partial_superblocks, s2.partial_superblocks);
    assert_eq!(list_len(&heap, 3), 40);
}

#[test]
fn remote_free_round_trip_through_bins() {
    let heap = Ralloc::create(32 << 20, RallocConfig::default());
    let n = 5000usize;
    // Producer allocates; consumer frees. The consumer's bins fill with
    // blocks whose home superblocks belong to the producer's fills, so
    // every overflow exercises the grouped (multi-superblock) bulk flush.
    let (tx, rx) = std::sync::mpsc::channel::<usize>();
    std::thread::scope(|s| {
        let producer = heap.clone();
        s.spawn(move || {
            for i in 0..n {
                let size = if i % 3 == 0 { 64 } else { 256 };
                let p = producer.malloc(size);
                assert!(!p.is_null());
                // Signature to catch double-issue while in flight.
                // SAFETY: fresh block, at least 8 bytes.
                unsafe { std::ptr::write(p as *mut u64, p as u64 ^ 0xDEAD_BEEF) };
                tx.send(p as usize).unwrap();
            }
        });
        let consumer = heap.clone();
        s.spawn(move || {
            let mut count = 0;
            while let Ok(addr) = rx.recv() {
                // SAFETY: producer handed us exclusive ownership.
                let sig = unsafe { std::ptr::read(addr as *const u64) };
                assert_eq!(sig, addr as u64 ^ 0xDEAD_BEEF, "block corrupted in flight");
                consumer.free(addr as *mut u8);
                count += 1;
            }
            assert_eq!(count, n);
        });
    });
    // Both threads exited: their bins drained back to the heap. The
    // remote frees must have been batched, not returned one CAS at a
    // time.
    let s = heap.slow_stats();
    assert!(s.cache_flushes.load(Ordering::Relaxed) >= 1, "no bulk flush happened");
    assert!(
        s.avg_flush_batch() > 8.0,
        "remote frees were not amortized: avg batch {}",
        s.avg_flush_batch()
    );
    assert!(
        s.flush_anchor_cas.load(Ordering::Relaxed) < s.cache_flushes_blocks.load(Ordering::Relaxed),
        "one CAS per block means batching is broken"
    );
    let report = check_heap(&heap);
    assert!(report.is_consistent(), "{:?}", report.violations);

    // Every block is reusable: two identical bulk allocation rounds
    // (with a full free in between) must land on the same footprint —
    // growth in round two means remote-freed blocks were stranded.
    let alloc_round = || -> Vec<*mut u8> {
        (0..n).map(|i| heap.malloc(if i % 3 == 0 { 64 } else { 256 })).collect()
    };
    let round_a = alloc_round();
    assert!(round_a.iter().all(|p| !p.is_null()));
    let used_a = heap.used_superblocks();
    for p in round_a {
        heap.free(p);
    }
    let round_b = alloc_round();
    assert!(round_b.iter().all(|p| !p.is_null()));
    assert!(
        heap.used_superblocks() <= used_a + 2,
        "remote-freed blocks were stranded: {} -> {}",
        used_a,
        heap.used_superblocks()
    );
    for p in round_b {
        heap.free(p);
    }
}

#[test]
fn generation_bump_invalidates_fast_slot_and_bins() {
    // The TLS fast slot memoizes (heap id -> cache set); a simulated
    // crash bumps the generation, and the very next malloc on the same
    // thread must notice (stale cached blocks now belong to the
    // recovered free lists).
    let heap = Ralloc::create(8 << 20, RallocConfig::tracked());
    let p = heap.malloc(64);
    assert!(!p.is_null());
    heap.free(p); // cached in this thread's bin, fast slot warm
    heap.crash_simulated();
    heap.recover();
    let q = heap.malloc(64);
    assert!(!q.is_null());
    // The recovered heap owns all blocks; allocating the whole class
    // population must not produce a duplicate of anything handed out
    // after recovery (i.e. the stale bin was discarded, not reused).
    let mut seen = std::collections::HashSet::new();
    seen.insert(q as usize);
    for _ in 0..1023 {
        let r = heap.malloc(64);
        assert!(!r.is_null());
        assert!(seen.insert(r as usize), "block issued twice after generation bump");
    }
}

#[test]
fn two_heaps_interleaved_keep_bins_separate() {
    // Alternating heaps defeats the fast slot every call (worst case);
    // correctness must not depend on it hitting.
    let a = Ralloc::create(4 << 20, RallocConfig::default());
    let b = Ralloc::create(4 << 20, RallocConfig::default());
    let mut ptrs = Vec::new();
    for i in 0..2000 {
        let h = if i % 2 == 0 { &a } else { &b };
        let p = h.malloc(64);
        assert!(!p.is_null());
        assert!(h.contains(p), "block from the wrong heap");
        ptrs.push((i % 2, p));
    }
    for (which, p) in ptrs {
        if which == 0 {
            a.free(p);
        } else {
            b.free(p);
        }
    }
    assert!(check_heap(&a).is_consistent());
    assert!(check_heap(&b).is_consistent());
}
