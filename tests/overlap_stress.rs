//! Overlap freedom (paper Theorem 5.1) and leakage freedom (Theorem 5.2)
//! under concurrency, for Ralloc and both persistent baselines.
//!
//! Every live block carries a full-block signature derived from its own
//! address; any overlap between two live blocks, or a block handed out
//! twice, corrupts a signature and fails the test. Property tests then
//! replay random single-threaded alloc/free traces against an interval
//! model.

use nvm::FlushModel;
use proptest::prelude::*;
use ralloc::PersistentAllocator;
// The churn stress generator is shared with examples/churn_probe.rs (so
// the probe's footprint trajectories stay comparable to this test) and
// lives in workloads::churn.
use workloads::churn::stress;
use workloads::{make_allocator, AllocKind, DynAlloc};

#[test]
fn ralloc_concurrent_signatures_hold() {
    let a = make_allocator(AllocKind::Ralloc, 128 << 20, FlushModel::free());
    stress(&a, 8, 20_000);
}

#[test]
fn makalu_concurrent_signatures_hold() {
    let a = make_allocator(AllocKind::Makalu, 128 << 20, FlushModel::free());
    stress(&a, 4, 8_000);
}

#[test]
fn pmdk_concurrent_signatures_hold() {
    let a = make_allocator(AllocKind::Pmdk, 128 << 20, FlushModel::free());
    stress(&a, 4, 4_000);
}

#[test]
fn ralloc_leakage_freedom_under_churn() {
    // The heap footprint must reach a fixed point when the live set is
    // bounded (Theorem 5.2: freed blocks become available for reuse).
    // Red since the seed (late carve steps quantized at one superblock
    // *per class*, fired whenever the OS scheduler deepened thread
    // overlap past what the warmup rounds happened to see); green since
    // the churn policy gained bounded fill retention + parked-bin warm
    // starts: a fill keeps max_count/8 blocks and returns the rest of
    // its claimed chain to the (globally visible) superblock, so one
    // circulating superblock per class feeds every overlap level the
    // 1-CPU scheduler can produce. 20/20 matrix runs green — trajectory
    // tables in ROADMAP "Churn footprint fixpoint".
    let heap = ralloc::Ralloc::create(
        64 << 20,
        ralloc::RallocConfig { flush_half: true, ..Default::default() },
    );
    let a: DynAlloc = std::sync::Arc::new(heap.clone());
    // Warm up: grows the heap to its steady footprint (live set + one
    // superblock of thread-cache retention per class per thread).
    for _ in 0..2 {
        stress(&a, 4, 10_000);
    }
    let used_after_warmup = heap.used_superblocks();
    for _ in 0..5 {
        stress(&a, 4, 10_000);
    }
    assert!(
        heap.used_superblocks() <= used_after_warmup + 8,
        "heap keeps growing under bounded live set: {} -> {}",
        used_after_warmup,
        heap.used_superblocks()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random alloc/free traces against an interval model: no two live
    /// blocks may ever intersect, across all size classes and the large
    /// path.
    #[test]
    fn random_trace_disjoint_intervals(ops in proptest::collection::vec((0u8..2, 0usize..20_000), 1..200)) {
        let a = make_allocator(AllocKind::Ralloc, 64 << 20, FlushModel::free());
        let mut live: Vec<(usize, usize)> = Vec::new();
        for (op, arg) in ops {
            if op == 0 || live.is_empty() {
                let size = arg.max(1); // up to ~20 KB: spans small + large
                let p = a.malloc(size) as usize;
                prop_assert!(p != 0);
                for &(q, qsize) in &live {
                    let disjoint = p + size <= q || q + qsize <= p;
                    prop_assert!(disjoint, "overlap: [{p:#x},+{size}) vs [{q:#x},+{qsize})");
                }
                live.push((p, size));
            } else {
                let i = arg % live.len();
                let (p, _) = live.swap_remove(i);
                a.free(p as *mut u8);
            }
        }
        for (p, _) in live {
            a.free(p as *mut u8);
        }
    }

    /// usable_size is monotone and at least the requested size.
    #[test]
    fn usable_size_covers_request(size in 0usize..100_000) {
        let heap = ralloc::Ralloc::create(32 << 20, ralloc::RallocConfig::default());
        let p = heap.malloc(size);
        prop_assert!(!p.is_null());
        prop_assert!(heap.usable_size(p) >= size);
        heap.free(p);
    }
}
