//! Overlap freedom (paper Theorem 5.1) and leakage freedom (Theorem 5.2)
//! under concurrency, for Ralloc and both persistent baselines.
//!
//! Every live block carries a full-block signature derived from its own
//! address; any overlap between two live blocks, or a block handed out
//! twice, corrupts a signature and fails the test. Property tests then
//! replay random single-threaded alloc/free traces against an interval
//! model.

use nvm::FlushModel;
use proptest::prelude::*;
use ralloc::PersistentAllocator;
use workloads::{make_allocator, AllocKind, DynAlloc};

fn fill_signature(ptr: *mut u8, size: usize) {
    for i in 0..size {
        // SAFETY: ptr is a live block of `size` bytes owned by us.
        unsafe { *ptr.add(i) = ((ptr as usize).wrapping_add(i) as u8) ^ 0x5A };
    }
}

fn check_signature(ptr: *mut u8, size: usize) {
    for i in 0..size {
        // SAFETY: as above.
        let got = unsafe { *ptr.add(i) };
        let want = ((ptr as usize).wrapping_add(i) as u8) ^ 0x5A;
        assert_eq!(got, want, "signature torn at {ptr:p}+{i}: block overlap or double-issue");
    }
}

fn stress(alloc: &DynAlloc, threads: usize, per_thread_ops: usize) {
    std::thread::scope(|s| {
        for t in 0..threads {
            let alloc = alloc.clone();
            s.spawn(move || {
                let mut held: Vec<(usize, usize)> = Vec::new();
                let mut x = 0x9E3779B9u64.wrapping_mul(t as u64 + 1) | 1;
                let mut rand = move || {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    x
                };
                for _ in 0..per_thread_ops {
                    if held.len() > 400 || (!held.is_empty() && rand() % 3 == 0) {
                        let i = (rand() as usize) % held.len();
                        let (p, sz) = held.swap_remove(i);
                        check_signature(p as *mut u8, sz);
                        alloc.free(p as *mut u8);
                    } else {
                        let sz = 8 + (rand() as usize % 50) * 8;
                        let p = alloc.malloc(sz);
                        assert!(!p.is_null());
                        fill_signature(p, sz);
                        held.push((p as usize, sz));
                    }
                }
                for (p, sz) in held {
                    check_signature(p as *mut u8, sz);
                    alloc.free(p as *mut u8);
                }
            });
        }
    });
}

#[test]
fn ralloc_concurrent_signatures_hold() {
    let a = make_allocator(AllocKind::Ralloc, 128 << 20, FlushModel::free());
    stress(&a, 8, 20_000);
}

#[test]
fn makalu_concurrent_signatures_hold() {
    let a = make_allocator(AllocKind::Makalu, 128 << 20, FlushModel::free());
    stress(&a, 4, 8_000);
}

#[test]
fn pmdk_concurrent_signatures_hold() {
    let a = make_allocator(AllocKind::Pmdk, 128 << 20, FlushModel::free());
    stress(&a, 4, 4_000);
}

#[test]
#[ignore = "known-flaky since the seed: the late post-warmup carve steps are \
            quantized at ~+19 superblocks and hit ~60% of runs on the PR 4 \
            host, unchanged (within noise) by the scavenge-recheck lever, \
            flush policy, or shard count — measurements in ROADMAP 'Churn \
            footprint fixpoint'. Run with --ignored."]
fn ralloc_leakage_freedom_under_churn() {
    // The heap footprint must reach a fixed point when the live set is
    // bounded (Theorem 5.2: freed blocks become available for reuse).
    // Probed with the Makalu-style flush-half policy (keep half of every
    // overflowing bin cached) and, since PR 4, with fills re-checking the
    // free list after a failed scavenge: both damp but do not remove the
    // late carve steps — see the ROADMAP entry for the measured
    // trajectories and the current demand-spike hypothesis.
    let heap = ralloc::Ralloc::create(
        64 << 20,
        ralloc::RallocConfig { flush_half: true, ..Default::default() },
    );
    let a: DynAlloc = std::sync::Arc::new(heap.clone());
    // Warm up: grows the heap to its steady footprint (live set + one
    // superblock of thread-cache retention per class per thread).
    for _ in 0..2 {
        stress(&a, 4, 10_000);
    }
    let used_after_warmup = heap.used_superblocks();
    for _ in 0..5 {
        stress(&a, 4, 10_000);
    }
    assert!(
        heap.used_superblocks() <= used_after_warmup + 8,
        "heap keeps growing under bounded live set: {} -> {}",
        used_after_warmup,
        heap.used_superblocks()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random alloc/free traces against an interval model: no two live
    /// blocks may ever intersect, across all size classes and the large
    /// path.
    #[test]
    fn random_trace_disjoint_intervals(ops in proptest::collection::vec((0u8..2, 0usize..20_000), 1..200)) {
        let a = make_allocator(AllocKind::Ralloc, 64 << 20, FlushModel::free());
        let mut live: Vec<(usize, usize)> = Vec::new();
        for (op, arg) in ops {
            if op == 0 || live.is_empty() {
                let size = arg.max(1); // up to ~20 KB: spans small + large
                let p = a.malloc(size) as usize;
                prop_assert!(p != 0);
                for &(q, qsize) in &live {
                    let disjoint = p + size <= q || q + qsize <= p;
                    prop_assert!(disjoint, "overlap: [{p:#x},+{size}) vs [{q:#x},+{qsize})");
                }
                live.push((p, size));
            } else {
                let i = arg % live.len();
                let (p, _) = live.swap_remove(i);
                a.free(p as *mut u8);
            }
        }
        for (p, _) in live {
            a.free(p as *mut u8);
        }
    }

    /// usable_size is monotone and at least the requested size.
    #[test]
    fn usable_size_covers_request(size in 0usize..100_000) {
        let heap = ralloc::Ralloc::create(32 << 20, ralloc::RallocConfig::default());
        let p = heap.malloc(size);
        prop_assert!(!p.is_null());
        prop_assert!(heap.usable_size(p) >= size);
        heap.free(p);
    }
}
