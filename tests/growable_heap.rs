//! The reserve/commit capacity model, end to end: a heap that starts
//! small must grow transparently under load, survive a crash injected at
//! every step of the grow protocol, refuse corrupt (truncated) images,
//! return null only at the *reserved* ceiling, and reopen grown images —
//! clean or dirty — with the grown frontier intact.

use std::sync::atomic::Ordering;

use nvm::{CrashInjector, CrashPoint};
use ralloc::{check_heap, Pptr, Ralloc, RallocConfig, Trace, Tracer, SB_SIZE};

#[repr(C)]
struct Node {
    value: u64,
    next: Pptr<Node>,
}

unsafe impl Trace for Node {
    fn trace(&self, t: &mut Tracer<'_>) {
        t.visit_pptr(&self.next);
    }
}

/// Build an n-node rooted list with application-side persistence, the way
/// the recovery tests do.
fn build_list(heap: &Ralloc, root: usize, n: usize) {
    let mut head: *mut Node = std::ptr::null_mut();
    for i in 0..n as u64 {
        let p = heap.malloc(std::mem::size_of::<Node>()) as *mut Node;
        assert!(!p.is_null());
        // SAFETY: fresh block.
        unsafe {
            (*p).value = i;
            (*p).next.set(head);
        }
        let off = p as usize - heap.pool().base() as usize;
        heap.pool().persist(off, std::mem::size_of::<Node>());
        head = p;
    }
    heap.set_root::<Node>(root, head);
}

fn list_len(heap: &Ralloc, root: usize) -> usize {
    let mut n = 0;
    let mut cur = heap.get_root::<Node>(root);
    while !cur.is_null() {
        n += 1;
        // SAFETY: recovered list node.
        cur = unsafe { (*cur).next.as_ptr() };
    }
    n
}

/// The PR's acceptance workload: a heap committed at 4 MiB serves 64 MiB
/// of live allocations with zero null returns, growing as it goes.
#[test]
fn heap_committed_at_4mib_serves_64mib_live() {
    let heap = Ralloc::create(
        4 << 20,
        RallocConfig {
            initial_capacity: Some(4 << 20),
            max_capacity: Some(128 << 20),
            ..Default::default()
        },
    );
    assert!(
        heap.committed_superblocks() * SB_SIZE <= 4 << 20,
        "heap must start at its initial commitment"
    );
    let block = 4096usize;
    let target = 64 << 20;
    let mut held: Vec<*mut u8> = Vec::with_capacity(target / block);
    for i in 0..target / block {
        let p = heap.malloc(block);
        assert!(!p.is_null(), "null at live size {} with room reserved", i * block);
        // Tag each block so growth never hands out aliased memory.
        // SAFETY: fresh block of `block` bytes.
        unsafe { std::ptr::write(p as *mut u64, i as u64) };
        held.push(p);
    }
    let grows = heap.slow_stats().heap_grows.load(Ordering::Relaxed);
    assert!(grows >= 4, "4 MiB -> 64+ MiB under doubling needs >= 4 grows, saw {grows}");
    for (i, &p) in held.iter().enumerate() {
        // SAFETY: live block.
        assert_eq!(unsafe { std::ptr::read(p as *const u64) }, i as u64, "block aliased");
    }
    let report = check_heap(&heap);
    assert!(report.is_consistent(), "{:?}", report.violations);
    for p in held {
        heap.free(p);
    }
    assert!(check_heap(&heap).is_consistent());
}

/// Growth is observable but cheap: cold-path only, one persisted word per
/// grow, and the number of grows is logarithmic in the final size.
#[test]
fn growth_is_logarithmic_and_cold_path() {
    let heap = Ralloc::create(
        1 << 20,
        RallocConfig {
            initial_capacity: Some(1 << 20),
            max_capacity: Some(64 << 20),
            ..Default::default()
        },
    );
    // Derive expectations from the *observed* initial frontier: the CI
    // grow-smoke runs this binary under RALLOC_INIT_CAP overrides.
    let initial_sb = heap.committed_superblocks().max(1) as f64;
    let mut held = Vec::new();
    while heap.used_superblocks() < heap.max_superblocks() / 2 {
        let p = heap.malloc(SB_SIZE - 64);
        assert!(!p.is_null());
        held.push(p);
    }
    let grows = heap.slow_stats().heap_grows.load(Ordering::Relaxed);
    let final_sb = heap.committed_superblocks() as f64;
    let bound = (final_sb / initial_sb).log2().ceil() as u64 + 2;
    assert!(
        grows <= bound,
        "doubling must give O(log n) grows: {grows} grows to {final_sb} sbs (bound {bound})"
    );
    for p in held {
        heap.free(p);
    }
}

/// Crash injected at *every* persistence event of a growth-heavy run:
/// whatever the interleaving, recovery must re-establish the full heap
/// invariant, keep all (and only) the rooted blocks, and leave the heap
/// serviceable. This sweep necessarily hits every step of the grow
/// protocol — between the frontier commit, its flush, its fence, and the
/// `used` bump — because each is a counted event.
#[test]
fn crash_sweep_through_grow_protocol_recovers() {
    let cfg = || RallocConfig {
        initial_capacity: Some(1 << 20),
        max_capacity: Some(8 << 20),
        ..RallocConfig::tracked()
    };
    // One large (superblock-carving) allocation per root, each rooted
    // immediately: persisted roots let us count exactly which
    // allocations must survive.
    let workload = |heap: &Ralloc, upto: usize| {
        for i in 0..upto {
            let p = heap.malloc(SB_SIZE / 2 + 1);
            if p.is_null() {
                break;
            }
            heap.set_root_raw(i, p);
        }
    };
    let (rounds, total_events) = {
        let inj = CrashInjector::new();
        let heap = Ralloc::create(1 << 20, RallocConfig { injector: Some(inj.clone()), ..cfg() });
        // Size the workload off the *observed* initial frontier (the CI
        // grow-smoke reruns this under RALLOC_INIT_CAP overrides): three
        // times the initial commitment forces at least two doublings.
        let rounds = (heap.committed_superblocks() * 3 + 8)
            .min(heap.max_superblocks().saturating_sub(8));
        let before = inj.observed();
        workload(&heap, rounds);
        assert!(
            heap.slow_stats().heap_grows.load(Ordering::Relaxed) >= 2,
            "workload must actually grow the heap"
        );
        (rounds, inj.observed() - before)
    };
    assert!(total_events > 100, "expected a rich event stream, got {total_events}");

    for budget in 0..total_events {
        let inj = CrashInjector::new();
        let heap = Ralloc::create(1 << 20, RallocConfig { injector: Some(inj.clone()), ..cfg() });
        inj.arm(budget);
        let crashed =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| workload(&heap, rounds)))
                .map_err(|payload| assert!(CrashPoint::is(&*payload), "unexpected panic"))
                .is_err();
        inj.disarm();
        assert!(crashed, "budget {budget} did not crash");
        heap.crash_simulated();
        let stats = heap.recover();
        // Exactly the persisted roots survive, one superblock each.
        let rooted = (0..rounds).filter(|&i| !heap.get_root_raw(i).is_null()).count();
        assert_eq!(
            stats.reachable_blocks as usize, rooted,
            "budget {budget}: recovery must keep all and only rooted blocks"
        );
        let report = check_heap(&heap);
        assert!(
            report.is_consistent(),
            "budget {budget}: invariants violated after grow-crash: {:?}",
            report.violations
        );
        // The heap keeps functioning — including further growth.
        for _ in 0..8 {
            let p = heap.malloc(SB_SIZE / 2 + 1);
            assert!(!p.is_null(), "budget {budget}: heap broken after recovery");
        }
        assert!(check_heap(&heap).is_consistent());
    }
}

/// OOM at the reserved ceiling: null, no corruption, and frees make the
/// heap serviceable again.
#[test]
fn oom_at_reserved_ceiling_is_clean() {
    let heap = Ralloc::create(
        1 << 20,
        RallocConfig {
            initial_capacity: Some(1 << 20),
            max_capacity: Some(4 << 20),
            ..Default::default()
        },
    );
    let mut held = Vec::new();
    loop {
        let p = heap.malloc(4096);
        if p.is_null() {
            break;
        }
        held.push(p);
    }
    assert!(
        held.len() * 4096 >= 3 << 20,
        "ceiling hit suspiciously early: {} blocks",
        held.len()
    );
    assert_eq!(heap.committed_superblocks(), heap.max_superblocks());
    let report = check_heap(&heap);
    assert!(report.is_consistent(), "OOM corrupted state: {:?}", report.violations);
    // Null again (stable), then frees restore service.
    assert!(heap.malloc(4096).is_null());
    for p in held.drain(..) {
        heap.free(p);
    }
    let p = heap.malloc(4096);
    assert!(!p.is_null(), "heap must serve again after frees");
    heap.free(p);
    assert!(check_heap(&heap).is_consistent());
}

/// A clean close/reopen round-trips the grown frontier through the file:
/// the saved file holds only the committed prefix, the header re-reserves
/// the full span, and the reopened heap neither regrows what it has nor
/// loses the room it had left.
#[test]
fn clean_reopen_of_grown_image_sees_grown_frontier() {
    let dir = std::env::temp_dir().join(format!("ralloc-grow-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let file = dir.join("grown.heap");
    std::fs::remove_file(&file).ok();
    let cfg = || RallocConfig {
        initial_capacity: Some(1 << 20),
        max_capacity: Some(32 << 20),
        ..RallocConfig::tracked()
    };
    let (grown_sb, max_sb, nodes) = {
        let (heap, dirty) = Ralloc::open_file(&file, 1 << 20, cfg()).unwrap();
        assert!(!dirty);
        // Enough nodes to outgrow whatever the initial frontier is
        // (env overrides included) by a comfortable margin.
        let nodes =
            (heap.committed_superblocks() + 16) * (SB_SIZE / std::mem::size_of::<Node>());
        build_list(&heap, 3, nodes);
        assert!(heap.slow_stats().heap_grows.load(Ordering::Relaxed) >= 1);
        heap.close().unwrap();
        (heap.committed_superblocks(), heap.max_superblocks(), nodes)
    };
    // The file is the committed prefix, not the reservation.
    let file_len = std::fs::metadata(&file).unwrap().len() as usize;
    assert!(
        file_len < max_sb * SB_SIZE && file_len >= grown_sb * SB_SIZE,
        "file ({file_len} B) must cover the frontier ({grown_sb} sbs), not the reserve"
    );
    let (heap, dirty) = Ralloc::open_file(&file, 1 << 20, cfg()).unwrap();
    assert!(!dirty, "clean close must reopen clean");
    assert_eq!(heap.committed_superblocks(), grown_sb, "grown frontier survives reopen");
    assert_eq!(heap.max_superblocks(), max_sb, "reservation survives reopen");
    assert_eq!(list_len(&heap, 3), nodes, "grown data survives reopen");
    // And the heap can keep growing from where it left off.
    let mut held = Vec::new();
    for _ in 0..grown_sb + 8 {
        let p = heap.malloc(SB_SIZE - 64);
        assert!(!p.is_null());
        held.push(p);
    }
    assert!(heap.committed_superblocks() > grown_sb);
    assert!(check_heap(&heap).is_consistent());
    std::fs::remove_dir_all(&dir).ok();
}

/// A *dirty* grown image (crash image remapped at a new base) recovers
/// with the grown frontier and all rooted data.
#[test]
fn dirty_reopen_of_grown_image_recovers() {
    let cfg = RallocConfig {
        initial_capacity: Some(1 << 20),
        max_capacity: Some(32 << 20),
        ..RallocConfig::tracked()
    };
    let heap = Ralloc::create(1 << 20, cfg.clone());
    let nodes = (heap.committed_superblocks() + 16) * (SB_SIZE / std::mem::size_of::<Node>());
    build_list(&heap, 0, nodes);
    assert!(heap.slow_stats().heap_grows.load(Ordering::Relaxed) >= 1);
    let used = heap.used_superblocks();
    let max_sb = heap.max_superblocks();
    let image = heap.pool().persistent_image();
    drop(heap);
    let (heap2, dirty) = Ralloc::from_image(&image, cfg);
    assert!(dirty);
    assert_eq!(heap2.max_superblocks(), max_sb);
    let _ = heap2.get_root::<Node>(0);
    let stats = heap2.recover();
    assert_eq!(stats.reachable_blocks as usize, nodes);
    assert_eq!(list_len(&heap2, 0), nodes);
    assert!(heap2.committed_superblocks() >= used, "frontier must cover the used prefix");
    assert!(check_heap(&heap2).is_consistent());
}

/// An image whose persisted frontier claims more than the file contains
/// is a truncated (data-losing) image and must be refused, not opened.
#[test]
fn truncated_image_with_frontier_beyond_file_is_refused() {
    let heap = Ralloc::create(
        1 << 20,
        RallocConfig {
            initial_capacity: Some(1 << 20),
            max_capacity: Some(16 << 20),
            ..RallocConfig::tracked()
        },
    );
    // Grow well past the initial commitment, then lop off the tail.
    let mut held = Vec::new();
    for _ in 0..64 {
        let p = heap.malloc(SB_SIZE / 2 + 1);
        assert!(!p.is_null());
        held.push(p);
    }
    let image = heap.pool().persistent_image();
    let truncated = &image[..2 << 20];
    let cfg = RallocConfig::tracked();
    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        Ralloc::from_image(truncated, cfg)
    }));
    assert!(r.is_err(), "truncated image must be refused");
}

