//! The reserve/commit capacity model, end to end: a heap that starts
//! small must grow transparently under load, survive a crash injected at
//! every step of the grow protocol, refuse corrupt (truncated *and*
//! oversized) images, return null only at the *reserved* ceiling, and
//! reopen grown images — clean or dirty — with the grown frontier intact.
//!
//! Since the frontier became bidirectional, the same file also sweeps a
//! crash through every event of the *shrink* protocol (unpublish →
//! CAS-min word → flush+fence → decommit), drives grow→shrink→grow
//! oscillation, and round-trips shrunken images through clean and dirty
//! reopens.

use std::sync::atomic::Ordering;

use nvm::{CrashInjector, CrashPoint};
use ralloc::{check_heap, Pptr, Ralloc, RallocConfig, ShrinkPolicy, Trace, Tracer, SB_SIZE};

#[repr(C)]
struct Node {
    value: u64,
    next: Pptr<Node>,
}

unsafe impl Trace for Node {
    fn trace(&self, t: &mut Tracer<'_>) {
        t.visit_pptr(&self.next);
    }
}

/// Build an n-node rooted list with application-side persistence, the way
/// the recovery tests do.
fn build_list(heap: &Ralloc, root: usize, n: usize) {
    let mut head: *mut Node = std::ptr::null_mut();
    for i in 0..n as u64 {
        let p = heap.malloc(std::mem::size_of::<Node>()) as *mut Node;
        assert!(!p.is_null());
        // SAFETY: fresh block.
        unsafe {
            (*p).value = i;
            (*p).next.set(head);
        }
        let off = p as usize - heap.pool().base() as usize;
        heap.pool().persist(off, std::mem::size_of::<Node>());
        head = p;
    }
    heap.set_root::<Node>(root, head);
}

fn list_len(heap: &Ralloc, root: usize) -> usize {
    let mut n = 0;
    let mut cur = heap.get_root::<Node>(root);
    while !cur.is_null() {
        n += 1;
        // SAFETY: recovered list node.
        cur = unsafe { (*cur).next.as_ptr() };
    }
    n
}

/// The PR's acceptance workload: a heap committed at 4 MiB serves 64 MiB
/// of live allocations with zero null returns, growing as it goes.
#[test]
fn heap_committed_at_4mib_serves_64mib_live() {
    let heap = Ralloc::create(
        4 << 20,
        RallocConfig {
            initial_capacity: Some(4 << 20),
            max_capacity: Some(128 << 20),
            ..Default::default()
        },
    );
    assert!(
        heap.committed_superblocks() * SB_SIZE <= 4 << 20,
        "heap must start at its initial commitment"
    );
    let block = 4096usize;
    let target = 64 << 20;
    let mut held: Vec<*mut u8> = Vec::with_capacity(target / block);
    for i in 0..target / block {
        let p = heap.malloc(block);
        assert!(!p.is_null(), "null at live size {} with room reserved", i * block);
        // Tag each block so growth never hands out aliased memory.
        // SAFETY: fresh block of `block` bytes.
        unsafe { std::ptr::write(p as *mut u64, i as u64) };
        held.push(p);
    }
    let grows = heap.slow_stats().heap_grows.load(Ordering::Relaxed);
    assert!(grows >= 4, "4 MiB -> 64+ MiB under doubling needs >= 4 grows, saw {grows}");
    for (i, &p) in held.iter().enumerate() {
        // SAFETY: live block.
        assert_eq!(unsafe { std::ptr::read(p as *const u64) }, i as u64, "block aliased");
    }
    let report = check_heap(&heap);
    assert!(report.is_consistent(), "{:?}", report.violations);
    for p in held {
        heap.free(p);
    }
    assert!(check_heap(&heap).is_consistent());
}

/// Growth is observable but cheap: cold-path only, one persisted word per
/// grow, and the number of grows is logarithmic in the final size.
#[test]
fn growth_is_logarithmic_and_cold_path() {
    let heap = Ralloc::create(
        1 << 20,
        RallocConfig {
            initial_capacity: Some(1 << 20),
            max_capacity: Some(64 << 20),
            ..Default::default()
        },
    );
    // Derive expectations from the *observed* initial frontier: the CI
    // grow-smoke runs this binary under RALLOC_INIT_CAP overrides.
    let initial_sb = heap.committed_superblocks().max(1) as f64;
    let mut held = Vec::new();
    while heap.used_superblocks() < heap.max_superblocks() / 2 {
        let p = heap.malloc(SB_SIZE - 64);
        assert!(!p.is_null());
        held.push(p);
    }
    let grows = heap.slow_stats().heap_grows.load(Ordering::Relaxed);
    let final_sb = heap.committed_superblocks() as f64;
    let bound = (final_sb / initial_sb).log2().ceil() as u64 + 2;
    assert!(
        grows <= bound,
        "doubling must give O(log n) grows: {grows} grows to {final_sb} sbs (bound {bound})"
    );
    for p in held {
        heap.free(p);
    }
}

/// Crash injected at *every* persistence event of a growth-heavy run:
/// whatever the interleaving, recovery must re-establish the full heap
/// invariant, keep all (and only) the rooted blocks, and leave the heap
/// serviceable. This sweep necessarily hits every step of the grow
/// protocol — between the frontier commit, its flush, its fence, and the
/// `used` bump — because each is a counted event.
#[test]
fn crash_sweep_through_grow_protocol_recovers() {
    let cfg = || RallocConfig {
        initial_capacity: Some(1 << 20),
        max_capacity: Some(8 << 20),
        ..RallocConfig::tracked()
    };
    // One large (superblock-carving) allocation per root, each rooted
    // immediately: persisted roots let us count exactly which
    // allocations must survive.
    let workload = |heap: &Ralloc, upto: usize| {
        for i in 0..upto {
            let p = heap.malloc(SB_SIZE / 2 + 1);
            if p.is_null() {
                break;
            }
            heap.set_root_raw(i, p);
        }
    };
    let (rounds, total_events) = {
        let inj = CrashInjector::new();
        let heap = Ralloc::create(1 << 20, RallocConfig { injector: Some(inj.clone()), ..cfg() });
        // Size the workload off the *observed* initial frontier (the CI
        // grow-smoke reruns this under RALLOC_INIT_CAP overrides): three
        // times the initial commitment forces at least two doublings.
        let rounds = (heap.committed_superblocks() * 3 + 8)
            .min(heap.max_superblocks().saturating_sub(8));
        let before = inj.observed();
        workload(&heap, rounds);
        assert!(
            heap.slow_stats().heap_grows.load(Ordering::Relaxed) >= 2,
            "workload must actually grow the heap"
        );
        (rounds, inj.observed() - before)
    };
    assert!(total_events > 100, "expected a rich event stream, got {total_events}");

    for budget in 0..total_events {
        let inj = CrashInjector::new();
        let heap = Ralloc::create(1 << 20, RallocConfig { injector: Some(inj.clone()), ..cfg() });
        inj.arm(budget);
        let crashed =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| workload(&heap, rounds)))
                .map_err(|payload| assert!(CrashPoint::is(&*payload), "unexpected panic"))
                .is_err();
        inj.disarm();
        assert!(crashed, "budget {budget} did not crash");
        heap.crash_simulated();
        let stats = heap.recover();
        // Exactly the persisted roots survive, one superblock each.
        let rooted = (0..rounds).filter(|&i| !heap.get_root_raw(i).is_null()).count();
        assert_eq!(
            stats.reachable_blocks as usize, rooted,
            "budget {budget}: recovery must keep all and only rooted blocks"
        );
        let report = check_heap(&heap);
        assert!(
            report.is_consistent(),
            "budget {budget}: invariants violated after grow-crash: {:?}",
            report.violations
        );
        // The heap keeps functioning — including further growth.
        for _ in 0..8 {
            let p = heap.malloc(SB_SIZE / 2 + 1);
            assert!(!p.is_null(), "budget {budget}: heap broken after recovery");
        }
        assert!(check_heap(&heap).is_consistent());
    }
}

/// OOM at the reserved ceiling: null, no corruption, and frees make the
/// heap serviceable again.
#[test]
fn oom_at_reserved_ceiling_is_clean() {
    let heap = Ralloc::create(
        1 << 20,
        RallocConfig {
            initial_capacity: Some(1 << 20),
            max_capacity: Some(4 << 20),
            ..Default::default()
        },
    );
    let mut held = Vec::new();
    loop {
        let p = heap.malloc(4096);
        if p.is_null() {
            break;
        }
        held.push(p);
    }
    assert!(
        held.len() * 4096 >= 3 << 20,
        "ceiling hit suspiciously early: {} blocks",
        held.len()
    );
    assert_eq!(heap.committed_superblocks(), heap.max_superblocks());
    let report = check_heap(&heap);
    assert!(report.is_consistent(), "OOM corrupted state: {:?}", report.violations);
    // Null again (stable), then frees restore service.
    assert!(heap.malloc(4096).is_null());
    for p in held.drain(..) {
        heap.free(p);
    }
    let p = heap.malloc(4096);
    assert!(!p.is_null(), "heap must serve again after frees");
    heap.free(p);
    assert!(check_heap(&heap).is_consistent());
}

/// A clean close/reopen round-trips the grown frontier through the file:
/// the saved file holds only the committed prefix, the header re-reserves
/// the full span, and the reopened heap neither regrows what it has nor
/// loses the room it had left.
#[test]
fn clean_reopen_of_grown_image_sees_grown_frontier() {
    let dir = std::env::temp_dir().join(format!("ralloc-grow-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let file = dir.join("grown.heap");
    std::fs::remove_file(&file).ok();
    let cfg = || RallocConfig {
        initial_capacity: Some(1 << 20),
        max_capacity: Some(32 << 20),
        ..RallocConfig::tracked()
    };
    let (grown_sb, max_sb, nodes) = {
        let (heap, dirty) = Ralloc::open_file(&file, 1 << 20, cfg()).unwrap();
        assert!(!dirty);
        // Enough nodes to outgrow whatever the initial frontier is
        // (env overrides included) by a comfortable margin.
        let nodes =
            (heap.committed_superblocks() + 16) * (SB_SIZE / std::mem::size_of::<Node>());
        build_list(&heap, 3, nodes);
        assert!(heap.slow_stats().heap_grows.load(Ordering::Relaxed) >= 1);
        heap.close().unwrap();
        (heap.committed_superblocks(), heap.max_superblocks(), nodes)
    };
    // The file is the committed prefix, not the reservation.
    let file_len = std::fs::metadata(&file).unwrap().len() as usize;
    assert!(
        file_len < max_sb * SB_SIZE && file_len >= grown_sb * SB_SIZE,
        "file ({file_len} B) must cover the frontier ({grown_sb} sbs), not the reserve"
    );
    let (heap, dirty) = Ralloc::open_file(&file, 1 << 20, cfg()).unwrap();
    assert!(!dirty, "clean close must reopen clean");
    assert_eq!(heap.committed_superblocks(), grown_sb, "grown frontier survives reopen");
    assert_eq!(heap.max_superblocks(), max_sb, "reservation survives reopen");
    assert_eq!(list_len(&heap, 3), nodes, "grown data survives reopen");
    // And the heap can keep growing from where it left off.
    let mut held = Vec::new();
    for _ in 0..grown_sb + 8 {
        let p = heap.malloc(SB_SIZE - 64);
        assert!(!p.is_null());
        held.push(p);
    }
    assert!(heap.committed_superblocks() > grown_sb);
    assert!(check_heap(&heap).is_consistent());
    std::fs::remove_dir_all(&dir).ok();
}

/// A *dirty* grown image (crash image remapped at a new base) recovers
/// with the grown frontier and all rooted data.
#[test]
fn dirty_reopen_of_grown_image_recovers() {
    let cfg = RallocConfig {
        initial_capacity: Some(1 << 20),
        max_capacity: Some(32 << 20),
        ..RallocConfig::tracked()
    };
    let heap = Ralloc::create(1 << 20, cfg.clone());
    let nodes = (heap.committed_superblocks() + 16) * (SB_SIZE / std::mem::size_of::<Node>());
    build_list(&heap, 0, nodes);
    assert!(heap.slow_stats().heap_grows.load(Ordering::Relaxed) >= 1);
    let used = heap.used_superblocks();
    let max_sb = heap.max_superblocks();
    let image = heap.pool().persistent_image();
    drop(heap);
    let (heap2, dirty) = Ralloc::from_image(&image, cfg);
    assert!(dirty);
    assert_eq!(heap2.max_superblocks(), max_sb);
    let _ = heap2.get_root::<Node>(0);
    let stats = heap2.recover();
    assert_eq!(stats.reachable_blocks as usize, nodes);
    assert_eq!(list_len(&heap2, 0), nodes);
    assert!(heap2.committed_superblocks() >= used, "frontier must cover the used prefix");
    assert!(check_heap(&heap2).is_consistent());
}

/// An image whose persisted frontier claims more than the file contains
/// is a truncated (data-losing) image and must be refused, not opened.
#[test]
fn truncated_image_with_frontier_beyond_file_is_refused() {
    let heap = Ralloc::create(
        1 << 20,
        RallocConfig {
            initial_capacity: Some(1 << 20),
            max_capacity: Some(16 << 20),
            ..RallocConfig::tracked()
        },
    );
    // Grow well past the initial commitment, then lop off the tail.
    let mut held = Vec::new();
    for _ in 0..64 {
        let p = heap.malloc(SB_SIZE / 2 + 1);
        assert!(!p.is_null());
        held.push(p);
    }
    let image = heap.pool().persistent_image();
    let truncated = &image[..2 << 20];
    let cfg = RallocConfig::tracked();
    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        Ralloc::from_image(truncated, cfg)
    }));
    assert!(r.is_err(), "truncated image must be refused");
}

/// The mirror-image corruption: an image *longer* than the reserved span
/// its own header records (foreign bytes appended, or a corrupt header).
/// The old header probe silently clamped the reservation up to the image
/// length; both the in-memory and the file path must refuse instead.
#[test]
fn oversized_image_beyond_header_reserve_is_refused() {
    let heap = Ralloc::create(1 << 20, RallocConfig::tracked());
    heap.close().unwrap();
    let mut image = heap.pool().persistent_image();
    // Pad to one page past the *reserved* span — anything shorter is
    // legally adopted (the frontier word heals upward to file content).
    image.resize(heap.pool().len() + 4096, 0xA5);
    let grown = image.clone();
    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        Ralloc::from_image(&grown, RallocConfig::tracked())
    }));
    let msg = *r.expect_err("oversized image must be refused").downcast::<String>().unwrap();
    assert!(msg.contains("refusing a corrupt heap image"), "wrong refusal: {msg}");

    // Same corruption through the file path.
    let dir = std::env::temp_dir().join(format!("ralloc-oversized-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let file = dir.join("oversized.heap");
    std::fs::write(&file, &image).unwrap();
    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        Ralloc::open_file(&file, 1 << 20, RallocConfig::tracked())
    }));
    let msg = *r.expect_err("oversized file must be refused").downcast::<String>().unwrap();
    assert!(msg.contains("refusing a corrupt heap image"), "wrong refusal: {msg}");
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------- shrink

/// Grow → shrink → grow oscillation: the frontier must follow the live
/// set down at quiescent points and climb back transparently, cycle after
/// cycle, with the full invariant holding at every stage.
#[test]
fn grow_shrink_grow_oscillation() {
    let heap = Ralloc::create(
        1 << 20,
        RallocConfig {
            initial_capacity: Some(1 << 20),
            max_capacity: Some(32 << 20),
            ..Default::default()
        },
    );
    let mut high_water = 0usize;
    for cycle in 0..3 {
        let mut held = Vec::new();
        for _ in 0..96 {
            let p = heap.malloc(SB_SIZE / 2 + 1); // large path: 1 sb each
            assert!(!p.is_null(), "cycle {cycle}: grow failed");
            held.push(p);
        }
        let grown = heap.committed_superblocks();
        assert!(grown >= 96, "cycle {cycle}: frontier did not grow");
        high_water = high_water.max(grown);
        for p in held {
            heap.free(p);
        }
        let released = heap.shrink();
        assert!(released >= 96, "cycle {cycle}: shrink released only {released}");
        assert_eq!(heap.used_superblocks(), 0, "cycle {cycle}: all blocks were freed");
        assert_eq!(
            heap.committed_superblocks(),
            0,
            "cycle {cycle}: empty heap must shrink to an empty frontier"
        );
        let report = check_heap(&heap);
        assert!(report.is_consistent(), "cycle {cycle}: {:?}", report.violations);
        // A shrunken heap serves immediately (regrow is transparent).
        // Large path on purpose: a small malloc would leave its freed
        // block in this thread's cache, pinning one superblock FULL
        // across the next cycle's shrink.
        let p = heap.malloc(SB_SIZE / 2 + 1);
        assert!(!p.is_null(), "cycle {cycle}: heap dead after shrink");
        heap.free(p);
        heap.shrink();
    }
    let s = heap.slow_stats();
    assert!(s.heap_shrinks.load(Ordering::Relaxed) >= 3);
    assert!(s.sb_released.load(Ordering::Relaxed) as usize >= 3 * 96);
}

/// Shrink must never release superblocks pinned by a *live* large block —
/// including its interior (continuation) superblocks, whose anchors are
/// stale recycled state.
#[test]
fn shrink_stops_at_live_large_span() {
    let heap = Ralloc::create(
        1 << 20,
        RallocConfig {
            initial_capacity: Some(1 << 20),
            max_capacity: Some(32 << 20),
            ..Default::default()
        },
    );
    // Leading garbage, then a live 3-superblock span, then garbage.
    let lead = heap.malloc(SB_SIZE / 2 + 1);
    let live = heap.malloc(3 * SB_SIZE - 64);
    let tail: Vec<_> = (0..8).map(|_| heap.malloc(SB_SIZE / 2 + 1)).collect();
    assert!(!lead.is_null() && !live.is_null());
    heap.free(lead);
    for p in tail {
        heap.free(p);
    }
    // SAFETY: live block.
    unsafe { std::ptr::write_bytes(live, 0xEE, 3 * SB_SIZE - 64) };
    let released = heap.shrink();
    assert!(released > 0, "trailing garbage must be released");
    let used = heap.used_superblocks();
    assert_eq!(heap.committed_superblocks(), used);
    assert!(used >= 4, "live span (and everything below it) must survive");
    // SAFETY: live block, still mapped.
    for off in [0usize, SB_SIZE, 2 * SB_SIZE, 3 * SB_SIZE - 65] {
        assert_eq!(unsafe { *live.add(off) }, 0xEE, "live large block corrupted by shrink");
    }
    assert!(check_heap(&heap).is_consistent());
    heap.free(live);
    assert!(heap.shrink() >= 3);
}

/// Crash injected at *every* persistence event of a free-then-close run:
/// the sweep necessarily hits each step of the shrink protocol (the
/// lowered `used` flush and fence, the CAS-min'd frontier word's flush
/// and fence, and the decommit itself, which is a counted event), plus
/// the surrounding close-path writes. Whatever the interleaving, recovery
/// must keep all and only the still-rooted blocks and re-establish the
/// full invariant, with the persisted frontier covering the persisted
/// `used` at every budget.
#[test]
fn crash_sweep_through_shrink_protocol_recovers() {
    let cfg = || RallocConfig {
        initial_capacity: Some(1 << 20),
        max_capacity: Some(8 << 20),
        shrink_policy: ShrinkPolicy::Both,
        ..RallocConfig::tracked()
    };
    let rounds = 48usize;
    // Phase A (not swept): grow a rooted large-block population.
    let setup = |heap: &Ralloc| {
        for i in 0..rounds {
            let p = heap.malloc(SB_SIZE / 2 + 1);
            assert!(!p.is_null());
            heap.set_root_raw(i, p);
        }
    };
    // Phase B (swept): unroot + free the top half, then close — the
    // close performs the shrink.
    let teardown = |heap: &Ralloc| {
        for i in rounds / 2..rounds {
            let p = heap.get_root_raw(i);
            heap.set_root_raw(i, std::ptr::null());
            heap.free(p);
        }
        heap.close().unwrap();
    };
    let total_events = {
        let inj = CrashInjector::new();
        let heap = Ralloc::create(1 << 20, RallocConfig { injector: Some(inj.clone()), ..cfg() });
        setup(&heap);
        let before = inj.observed();
        teardown(&heap);
        assert!(
            heap.slow_stats().heap_shrinks.load(Ordering::Relaxed) >= 1,
            "the teardown must actually shrink"
        );
        assert_eq!(heap.committed_superblocks(), heap.used_superblocks());
        inj.observed() - before
    };
    assert!(total_events > 10, "expected a rich event stream, got {total_events}");

    for budget in 0..total_events {
        let inj = CrashInjector::new();
        let heap = Ralloc::create(1 << 20, RallocConfig { injector: Some(inj.clone()), ..cfg() });
        setup(&heap);
        inj.arm(budget);
        let crashed =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| teardown(&heap)))
                .map_err(|payload| assert!(CrashPoint::is(&*payload), "unexpected panic"))
                .is_err();
        inj.disarm();
        assert!(crashed, "budget {budget} did not crash");
        heap.crash_simulated();
        let stats = heap.recover();
        // Exact root-survival accounting: every root that was still set
        // at the crash survives (one superblock each), nothing else.
        let rooted = (0..rounds).filter(|&i| !heap.get_root_raw(i).is_null()).count();
        assert_eq!(
            stats.reachable_blocks as usize, rooted,
            "budget {budget}: recovery must keep all and only rooted blocks"
        );
        assert!(
            rooted >= rounds / 2,
            "budget {budget}: a kept root was lost (have {rooted})"
        );
        // Recovery itself re-shrinks (policy Both): frontier == used.
        assert_eq!(
            heap.committed_superblocks(),
            heap.used_superblocks(),
            "budget {budget}: post-recovery shrink must land frontier on used"
        );
        let report = check_heap(&heap);
        assert!(
            report.is_consistent(),
            "budget {budget}: invariants violated after shrink-crash: {:?}",
            report.violations
        );
        // The heap keeps functioning — including regrowth over the
        // decommitted (or never-recommitted) tail.
        for _ in 0..8 {
            let p = heap.malloc(SB_SIZE / 2 + 1);
            assert!(!p.is_null(), "budget {budget}: heap broken after recovery");
        }
        assert!(check_heap(&heap).is_consistent());
    }
}

/// A clean close of a heap whose live set collapsed writes a *shrunken*
/// image; reopening sees the shrunken frontier (not the in-run
/// high-water mark), all live data, and full room to regrow. The dirty
/// path (crash image of an explicitly shrunken heap) must equally
/// recover.
#[test]
fn shrunken_image_clean_and_dirty_reopen() {
    let dir = std::env::temp_dir().join(format!("ralloc-shrink-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let file = dir.join("shrunken.heap");
    std::fs::remove_file(&file).ok();
    let cfg = || RallocConfig {
        initial_capacity: Some(1 << 20),
        max_capacity: Some(32 << 20),
        ..RallocConfig::tracked()
    };
    let nodes = 2000usize;
    let (high_water, closed_sb, max_sb) = {
        let (heap, dirty) = Ralloc::open_file(&file, 1 << 20, cfg()).unwrap();
        assert!(!dirty);
        build_list(&heap, 5, nodes); // live set, packed low
        // Garbage spike far above the live set, then release it.
        let spike: Vec<_> = (0..64).map(|_| heap.malloc(SB_SIZE / 2 + 1)).collect();
        assert!(spike.iter().all(|p| !p.is_null()));
        let high_water = heap.committed_superblocks();
        for p in spike {
            heap.free(p);
        }
        heap.close().unwrap();
        (high_water, heap.committed_superblocks(), heap.max_superblocks())
    };
    assert!(
        closed_sb < high_water,
        "close must shrink below the high-water mark ({closed_sb} vs {high_water})"
    );
    let file_len = std::fs::metadata(&file).unwrap().len() as usize;
    assert!(
        file_len < high_water * SB_SIZE,
        "the saved file must be the shrunken prefix, not the high-water span"
    );
    // Clean reopen: shrunken frontier, live data, reservation intact.
    let (heap, dirty) = Ralloc::open_file(&file, 1 << 20, cfg()).unwrap();
    assert!(!dirty, "clean close must reopen clean");
    assert_eq!(heap.committed_superblocks(), closed_sb);
    assert_eq!(heap.max_superblocks(), max_sb, "reservation survives the shrink");
    assert_eq!(list_len(&heap, 5), nodes, "live data survives the shrink");
    let mut held = Vec::new();
    for _ in 0..closed_sb + 8 {
        let p = heap.malloc(SB_SIZE - 64);
        assert!(!p.is_null(), "shrunken heap must regrow");
        held.push(p);
    }
    assert!(heap.committed_superblocks() > closed_sb);
    assert!(check_heap(&heap).is_consistent());

    // Dirty path: explicit shrink, then a crash image at a new base.
    let heap2 = Ralloc::create(1 << 20, cfg());
    build_list(&heap2, 0, nodes);
    let spike: Vec<_> = (0..64).map(|_| heap2.malloc(SB_SIZE / 2 + 1)).collect();
    let hw2 = heap2.committed_superblocks();
    for p in spike {
        heap2.free(p);
    }
    assert!(heap2.shrink() > 0);
    assert!(heap2.committed_superblocks() < hw2);
    let image = heap2.pool().persistent_image();
    assert!(image.len() < hw2 * SB_SIZE, "crash image must be the shrunken prefix");
    drop(heap2);
    let (heap3, dirty) = Ralloc::from_image(&image, cfg());
    assert!(dirty);
    let _ = heap3.get_root::<Node>(0);
    let stats = heap3.recover();
    assert_eq!(stats.reachable_blocks as usize, nodes);
    assert_eq!(list_len(&heap3, 0), nodes);
    assert!(check_heap(&heap3).is_consistent());
    std::fs::remove_dir_all(&dir).ok();
}

/// The CI shrink-smoke workload (run there under `RALLOC_INIT_CAP=2M`):
/// a multi-threaded churn spike on top of a bounded live set, a clean
/// close, and a reopen whose committed frontier must sit below the
/// in-run high-water mark and within a doubling step of the live set.
#[test]
fn churn_workload_close_reopen_commits_near_live_set() {
    let dir = std::env::temp_dir().join(format!("ralloc-churnsmoke-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let file = dir.join("churn.heap");
    std::fs::remove_file(&file).ok();
    let cfg = || RallocConfig {
        initial_capacity: Some(2 << 20),
        max_capacity: Some(64 << 20),
        flush_half: true, // churn policy: bounded retention levers on
        ..Default::default()
    };
    let nodes = 1000usize;
    let (high_water, used_after_close, closed_sb) = {
        let (heap, dirty) = Ralloc::open_file(&file, 2 << 20, cfg()).unwrap();
        assert!(!dirty);
        build_list(&heap, 0, nodes); // live set first: packs low
        // Churn: worker threads allocate and free far more than the live
        // set, across many classes, then exit (caches park/flush).
        std::thread::scope(|s| {
            for t in 0..4 {
                let heap = heap.clone();
                s.spawn(move || {
                    let mut held: Vec<*mut u8> = Vec::new();
                    let mut x = 0x9E3779B9u64.wrapping_mul(t + 1) | 1;
                    for _ in 0..30_000 {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        if held.len() > 500 || (!held.is_empty() && x.is_multiple_of(3)) {
                            let p = held.swap_remove(x as usize % held.len());
                            heap.free(p);
                        } else {
                            let p = heap.malloc(8 + (x as usize % 50) * 8);
                            assert!(!p.is_null());
                            held.push(p);
                        }
                    }
                    for p in held {
                        heap.free(p);
                    }
                });
            }
        });
        let high_water = heap.committed_superblocks();
        heap.close().unwrap();
        (high_water, heap.used_superblocks(), heap.committed_superblocks())
    };
    let (heap, dirty) = Ralloc::open_file(&file, 2 << 20, cfg()).unwrap();
    assert!(!dirty);
    assert_eq!(
        heap.committed_superblocks(),
        closed_sb,
        "reopened committed_len must equal the shrunken frontier"
    );
    assert!(
        heap.committed_superblocks() < high_water,
        "reopened committed_len ({}) must drop below the in-run high-water mark ({high_water})",
        heap.committed_superblocks()
    );
    // Acceptance bound: committed ≤ live-set superblocks + one doubling
    // step. The live set is the rooted list plus bounded per-class
    // fragmentation pinned below it by the churn (at most a few partial
    // superblocks per active class — the churn spans ~19 classes).
    let live_sbs = (nodes * std::mem::size_of::<Node>()).div_ceil(SB_SIZE) + 19;
    assert!(
        heap.committed_superblocks() <= 2 * live_sbs,
        "reopened frontier {} exceeds live-set bound {live_sbs} + one doubling",
        heap.committed_superblocks()
    );
    assert_eq!(heap.used_superblocks(), used_after_close);
    assert_eq!(list_len(&heap, 0), nodes, "live set survives the churn + shrink");
    assert!(check_heap(&heap).is_consistent());
    std::fs::remove_dir_all(&dir).ok();
}

