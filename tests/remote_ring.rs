//! Remote-free rings under a producer/consumer split (the shape the
//! rings exist for): producers allocate, a consumer thread frees, so
//! every freed group belongs to a superblock the consumer does not own.
//!
//! Ring-off, each such group costs the consumer one anchor CAS on a
//! cache line the owner is concurrently filling from. Ring-on, the
//! consumer parks the group on the owner's MPSC ring with a wait-free
//! push and the owner reclaims it during its next fill — the acceptance
//! bar is a ≥10× collapse in anchor CASes *per remote free*, measured by
//! counters (wall-clock is meaningless on a single-CPU host).

use std::sync::atomic::Ordering;

use ralloc::{Ralloc, RallocConfig};

/// Run a bounded-channel producer/consumer workload and report
/// `(remote_anchor_cas, remote_free_blocks, rings_enabled)`. Counters
/// are read before the heap closes, so teardown ring drains (which pay
/// the direct CAS on purpose) don't pollute the steady-state measure.
fn prodcon(cfg: RallocConfig, producers: usize, per_producer: usize) -> (u64, u64, bool) {
    let heap = Ralloc::create(64 << 20, cfg);
    let enabled = heap.remote_rings_enabled();
    std::thread::scope(|s| {
        let (tx, rx) = std::sync::mpsc::sync_channel::<usize>(256);
        for _ in 0..producers {
            let tx = tx.clone();
            let heap = &heap;
            s.spawn(move || {
                for i in 0..per_producer {
                    let p = heap.malloc(64);
                    assert!(!p.is_null());
                    // SAFETY: fresh 64-byte block.
                    unsafe { std::ptr::write(p as *mut u64, i as u64) };
                    tx.send(p as usize).unwrap();
                }
            });
        }
        drop(tx);
        for p in rx {
            heap.free(p as *mut u8);
        }
    });
    let stats = heap.slow_stats();
    (
        stats.remote_anchor_cas.load(Ordering::Relaxed),
        stats.remote_free_blocks.load(Ordering::Relaxed),
        enabled,
    )
}

#[test]
#[cfg_attr(feature = "telemetry-off", ignore = "asserts telemetry counters, which are compiled out")]
fn prodcon_remote_cas_collapses_with_rings() {
    const PRODUCERS: usize = 2;
    const PER_PRODUCER: usize = 32 * 1024;
    let (cas_off, blocks_off, off_ringed) =
        prodcon(RallocConfig { remote_ring: false, ..Default::default() }, PRODUCERS, PER_PRODUCER);
    let (cas_on, blocks_on, on_ringed) =
        prodcon(RallocConfig::default(), PRODUCERS, PER_PRODUCER);
    if off_ringed || !on_ringed {
        eprintln!("skipping: RALLOC_REMOTE_RING/RALLOC_SHARDS override pins both heaps to one mode");
        return;
    }
    assert!(blocks_off > 0, "consumer frees must be remote");
    assert!(blocks_on > 0, "consumer frees must be remote");
    let off_ratio = cas_off as f64 / blocks_off as f64;
    let on_ratio = cas_on as f64 / blocks_on as f64;
    assert!(off_ratio > 0.0, "ring-off remote groups must pay anchor CASes");
    assert!(
        on_ratio * 10.0 <= off_ratio,
        "rings must cut anchor CASes per remote free ≥10×: \
         off {cas_off}/{blocks_off} = {off_ratio:.6}, on {cas_on}/{blocks_on} = {on_ratio:.6}"
    );
}

#[test]
#[cfg_attr(feature = "telemetry-off", ignore = "asserts telemetry counters, which are compiled out")]
fn prodcon_rings_leave_a_consistent_reusable_heap() {
    // Same shape, but the property under test is conservation: after the
    // churn, an explicit shrink (which drains every ring) must find all
    // blocks home again.
    let heap = Ralloc::create(64 << 20, RallocConfig::default());
    std::thread::scope(|s| {
        let (tx, rx) = std::sync::mpsc::sync_channel::<usize>(256);
        for _ in 0..2 {
            let tx = tx.clone();
            let heap = &heap;
            s.spawn(move || {
                for _ in 0..8 * 1024 {
                    let p = heap.malloc(64);
                    assert!(!p.is_null());
                    tx.send(p as usize).unwrap();
                }
            });
        }
        drop(tx);
        for p in rx {
            heap.free(p as *mut u8);
        }
    });
    heap.shrink();
    let report = ralloc::check_heap(&heap);
    assert!(report.is_consistent(), "{:?}", report.violations);
}
