//! Sharded partial lists + shard-aware recovery, end to end.
//!
//! Covers the three hazards the sharding subsystem introduces on top of
//! the single-list design:
//!
//! 1. **Crash mid-steal**: a descriptor stolen from a neighbor shard is
//!    on *no* list while its blocks sit in the thief's (transient) cache;
//!    a crash in that window must lose nothing after recovery.
//! 2. **Crash during parallel recovery**: the sweep publishes to shards
//!    before step 10 persists anything; a crash mid-recovery must land
//!    back on the pre-recovery persistent state and recover cleanly.
//! 3. **Determinism**: 1-worker and N-worker rebuilds of the same crash
//!    image must agree on the reachable set *and* on per-shard list
//!    membership, which must be a disjoint partition placed by
//!    `shard::place_superblock`.

use std::sync::atomic::Ordering;
use std::sync::{mpsc, Arc};

use nvm::{CrashInjector, CrashPoint};
use ralloc::layout::Geometry;
use ralloc::lists::DescList;
use ralloc::shard::{home_shard, place_superblock, thread_token, ShardedPartial};
use ralloc::{check_heap, Pptr, Ralloc, RallocConfig, Trace, Tracer};

/// 14336 B: the largest small class — 4 blocks per superblock and a
/// 4-slot cache bin, so a handful of frees reaches the shared lists.
const BLOCK: usize = 14336;

fn sharded_cfg(shards: usize) -> RallocConfig {
    RallocConfig { partial_shards: shards, ..RallocConfig::tracked() }
}

/// Like [`sharded_cfg`] but with the remote-free rings pinned off: the
/// steal-path tests drive blocks onto *partial lists* via cross-shard
/// frees, which with rings on would ride the owner's ring instead (by
/// design — `tests/remote_ring.rs` covers that path). The
/// `RALLOC_REMOTE_RING` env knob still overrides this pin, so those
/// tests also skip when the heap reports rings active.
fn direct_sharded_cfg(shards: usize) -> RallocConfig {
    RallocConfig { remote_ring: false, ..sharded_cfg(shards) }
}

/// Drive some superblocks of `heap`'s 14336 B class onto the calling
/// thread's home shard: allocate `sbs` superblocks' worth, then free one
/// block per superblock *plus* enough to overflow the 4-slot bin, so the
/// flush enlists each superblock as PARTIAL.
fn make_partials(heap: &Ralloc, sbs: usize) -> Vec<*mut u8> {
    assert!(sbs > 4, "need enough superblocks to overflow the 4-slot bin");
    let mut held = Vec::new();
    for _ in 0..sbs * 4 {
        let p = heap.malloc(BLOCK);
        assert!(!p.is_null());
        held.push(p);
    }
    // Free one block of each superblock (indices 0, 4, 8, ... of the
    // allocation order): the 5th free overflows the 4-slot bin and the
    // flush enlists the first four superblocks as PARTIAL on our shard.
    for i in (0..sbs * 4).step_by(4) {
        heap.free(held[i]);
        held[i] = std::ptr::null_mut();
    }
    held.retain(|p| !p.is_null());
    held
}

#[test]
fn fills_prefer_home_shard_and_steal_when_starved() {
    let heap = Ralloc::create(32 << 20, direct_sharded_cfg(4));
    if heap.partial_shards() < 2 {
        eprintln!("skipping: stealing needs >=2 shards (RALLOC_SHARDS override?)");
        return;
    }
    if heap.remote_rings_enabled() {
        eprintln!("skipping: steal path needs direct flushes (RALLOC_REMOTE_RING override?)");
        return;
    }
    let my_home = home_shard(thread_token(), heap.partial_shards());
    let _held = make_partials(&heap, 6);
    let stats = heap.slow_stats();
    let home0 = stats.partial_pops_home.load(Ordering::Relaxed);
    let steal0 = stats.partial_steals.load(Ordering::Relaxed);

    // Draining our own bin refills from OUR shard: home pops, no steals.
    // (Only four mallocs, so partial superblocks remain for the thief.)
    let mut mine = Vec::new();
    for _ in 0..4 {
        mine.push(heap.malloc(BLOCK));
    }
    assert!(stats.partial_pops_home.load(Ordering::Relaxed) > home0);
    assert_eq!(stats.partial_steals.load(Ordering::Relaxed), steal0);

    // A thread whose home shard is different (and empty) must steal.
    let (tx, rx) = mpsc::channel();
    for _ in 0..64 {
        let heap = heap.clone();
        let tx = tx.clone();
        let handle = std::thread::spawn(move || {
            let home = home_shard(thread_token(), heap.partial_shards());
            if home == my_home {
                return false; // token landed on our shard; try another
            }
            let p = heap.malloc(BLOCK);
            assert!(!p.is_null());
            tx.send(p as usize).unwrap();
            true
        });
        if handle.join().unwrap() {
            break;
        }
    }
    let stolen_block = rx.recv().expect("no thread landed on a foreign shard") as *mut u8;
    assert!(
        stats.partial_steals.load(Ordering::Relaxed) > steal0,
        "foreign-shard fill did not steal"
    );
    heap.free(stolen_block);
    let report = check_heap(&heap);
    assert!(report.is_consistent(), "{:?}", report.violations);
}

#[test]
fn crash_mid_steal_loses_nothing() {
    let heap = Ralloc::create(32 << 20, direct_sharded_cfg(4));
    if heap.partial_shards() < 2 {
        eprintln!("skipping: stealing needs >=2 shards (RALLOC_SHARDS override?)");
        return;
    }
    if heap.remote_rings_enabled() {
        eprintln!("skipping: steal path needs direct flushes (RALLOC_REMOTE_RING override?)");
        return;
    }
    let my_home = home_shard(thread_token(), heap.partial_shards());

    // One durable block the recovery must keep.
    let rooted = heap.malloc(8) as *mut u64;
    // SAFETY: fresh 8-byte block.
    unsafe { *rooted = 0xFEED };
    let off = rooted as usize - heap.pool().base() as usize;
    heap.pool().persist(off, 8);
    heap.set_root::<u64>(0, rooted);

    let _held = make_partials(&heap, 6);
    let stats = heap.slow_stats();
    let steal0 = stats.partial_steals.load(Ordering::Relaxed);

    // Park a foreign-home thread *mid-steal*: it has popped a descriptor
    // from our shard (the descriptor is now on no list) and holds the
    // whole batch in its transient bin when the crash hits.
    let (stole_tx, stole_rx) = mpsc::channel();
    let (resume_tx, resume_rx) = mpsc::channel::<()>();
    let resume_rx = Arc::new(std::sync::Mutex::new(resume_rx));
    let mut thief = None;
    for _ in 0..64 {
        let heap = heap.clone();
        let stole_tx = stole_tx.clone();
        let resume_rx = resume_rx.clone();
        let handle = std::thread::spawn(move || {
            let home = home_shard(thread_token(), heap.partial_shards());
            if home == my_home {
                stole_tx.send(false).unwrap();
                return;
            }
            let p = heap.malloc(BLOCK); // fill steals from my_home's shard
            assert!(!p.is_null());
            stole_tx.send(true).unwrap();
            // Hold the stolen batch in our cache across the crash.
            resume_rx.lock().unwrap().recv().unwrap();
        });
        if stole_rx.recv().unwrap() {
            thief = Some(handle);
            break;
        }
        handle.join().unwrap();
    }
    let thief = thief.expect("no thread landed on a foreign shard");
    assert!(stats.partial_steals.load(Ordering::Relaxed) > steal0, "setup did not steal");

    // Crash while the stolen descriptor is in the thief's hands.
    heap.crash_simulated();
    let rstats = heap.recover();
    assert_eq!(rstats.reachable_blocks, 1, "only the rooted block survives");
    assert_eq!(unsafe { *heap.get_root::<u64>(0) }, 0xFEED);
    let report = check_heap(&heap);
    assert!(report.is_consistent(), "{:?}", report.violations);
    // Every superblock is accounted for: with only one live block, all
    // carved superblocks are back on the free list or a partial shard —
    // including the one the thief was holding when the power "failed".
    assert_eq!(
        report.free_list_len + report.partial_list_len,
        report.superblocks,
        "superblock lost with the in-flight steal"
    );
    // The heap still serves allocations from the recovered shards.
    let p = heap.malloc(BLOCK);
    assert!(!p.is_null());

    resume_tx.send(()).unwrap();
    thief.join().unwrap(); // generation bumped: thief's cache is discarded
    let report = check_heap(&heap);
    assert!(report.is_consistent(), "{:?}", report.violations);
}

#[test]
fn crash_during_parallel_recovery_is_recoverable() {
    let inj = CrashInjector::new();
    let cfg = RallocConfig { injector: Some(inj.clone()), ..sharded_cfg(4) };
    let heap = Ralloc::create(32 << 20, cfg);
    let rooted = heap.malloc(8) as *mut u64;
    // SAFETY: fresh block.
    unsafe { *rooted = 77 };
    let off = rooted as usize - heap.pool().base() as usize;
    heap.pool().persist(off, 8);
    heap.set_root::<u64>(0, rooted);
    let _held = make_partials(&heap, 8);
    for _ in 0..500 {
        let _ = heap.malloc(64); // leaked: sweep work
    }
    heap.crash_simulated();

    // Recovery's only persistence events are its final step-10 flush +
    // fence; arming a 1-event budget crashes it after the parallel sweep
    // has already published every shard but before anything persisted.
    inj.arm(1);
    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| heap.recover_parallel(4)));
    inj.disarm();
    assert!(CrashPoint::is(&*r.expect_err("injector must fire mid-recovery")));

    // Power failed mid-recovery: back to the pre-recovery image.
    heap.crash_simulated();
    let stats = heap.recover_parallel(4);
    assert_eq!(stats.reachable_blocks, 1);
    assert_eq!(unsafe { *heap.get_root::<u64>(0) }, 77);
    let report = check_heap(&heap);
    assert!(report.is_consistent(), "{:?}", report.violations);
}

#[repr(C)]
struct Node {
    value: u64,
    next: Pptr<Node>,
}

unsafe impl Trace for Node {
    fn trace(&self, t: &mut Tracer<'_>) {
        t.visit_pptr(&self.next);
    }
}

/// Per-shard partial-list membership, as sorted sets, plus the free list.
fn list_snapshot(heap: &Ralloc) -> (Vec<Vec<Vec<u32>>>, Vec<u32>) {
    let geo: Geometry = heap.geometry();
    let pool = heap.pool();
    let mut partials = Vec::new();
    for class in 1..40u32 {
        let mut shards =
            ShardedPartial::new(class, heap.partial_shards()).collect_all(pool, &geo);
        for s in shards.iter_mut() {
            s.sort_unstable();
        }
        partials.push(shards);
    }
    let mut free = DescList::free_list(&geo).collect(pool, &geo);
    free.sort_unstable();
    (partials, free)
}

#[test]
fn one_and_n_worker_recovery_agree_and_partition_the_shards() {
    // Build a crash image with real structure: rooted lists in several
    // classes, partial superblocks, leaked garbage, a large span.
    let heap = Ralloc::create(64 << 20, sharded_cfg(4));
    for r in 0..6 {
        let mut head: *mut Node = std::ptr::null_mut();
        for i in 0..200u64 {
            let p = heap.malloc(std::mem::size_of::<Node>()) as *mut Node;
            assert!(!p.is_null());
            // SAFETY: fresh block.
            unsafe {
                (*p).value = i;
                (*p).next.set(head);
            }
            let off = p as usize - heap.pool().base() as usize;
            heap.pool().persist(off, std::mem::size_of::<Node>());
            head = p;
        }
        heap.set_root::<Node>(r, head);
    }
    for i in 0..4000usize {
        let p = heap.malloc(8 + (i % 40) * 8);
        assert!(!p.is_null());
        if i % 3 == 0 {
            heap.free(p);
        }
    }
    let big = heap.malloc(3 * ralloc::SB_SIZE);
    assert!(!big.is_null());
    heap.crash_simulated();
    let image = heap.pool().persistent_image();

    let recovered: Vec<_> = [1usize, 4]
        .iter()
        .map(|&workers| {
            let (h, dirty) = Ralloc::from_image(&image, sharded_cfg(4));
            assert!(dirty);
            for r in 0..6 {
                let _ = h.get_root::<Node>(r); // re-register filters
            }
            let stats = h.recover_parallel(workers);
            let report = check_heap(&h);
            assert!(report.is_consistent(), "x{workers}: {:?}", report.violations);
            (h, stats)
        })
        .collect();

    let (h1, s1) = &recovered[0];
    let (hn, sn) = &recovered[1];
    assert_eq!(s1.reachable_blocks, sn.reachable_blocks);
    assert_eq!(s1.reachable_bytes, sn.reachable_bytes);
    assert_eq!(s1.free_superblocks, sn.free_superblocks);
    assert_eq!(s1.partial_superblocks, sn.partial_superblocks);
    assert_eq!(s1.full_superblocks, sn.full_superblocks);
    assert_eq!(sn.threads, 4);
    assert_eq!(s1.shards, h1.partial_shards());

    // Identical per-shard membership, not just identical totals.
    let (p1, f1) = list_snapshot(h1);
    let (pn, fn_) = list_snapshot(hn);
    assert_eq!(f1, fn_, "free-list contents differ across worker counts");
    assert_eq!(p1, pn, "per-shard partial membership differs across worker counts");

    // The shard contents are a *partition* placed by place_superblock:
    // disjoint across shards (checker verified) and each member on the
    // shard the pure placement function names.
    let shards = h1.partial_shards();
    let mut total_listed = 0usize;
    for class_shards in &p1 {
        for (s, members) in class_shards.iter().enumerate() {
            for &sb in members {
                assert_eq!(
                    place_superblock(sb as usize, shards),
                    s as u32,
                    "superblock {sb} rebuilt on wrong shard"
                );
                total_listed += 1;
            }
        }
    }
    assert_eq!(total_listed, s1.partial_superblocks, "partition does not cover all partials");
}

#[test]
fn clean_reopen_with_fewer_shards_strands_nothing() {
    // A *clean* close skips recovery on reopen, so partial superblocks
    // parked on shards beyond the new run's live count would be invisible
    // to pops and scavenges forever; `adopt` must fold them in.
    let heap = Ralloc::create(64 << 20, sharded_cfg(16));
    // Park partials on several different home shards.
    std::thread::scope(|s| {
        for _ in 0..4 {
            let heap = heap.clone();
            s.spawn(move || {
                let _held = make_partials(&heap, 6);
            });
        }
    });
    heap.close().unwrap();
    let image = heap.pool().persistent_image();
    let used = heap.used_superblocks();
    drop(heap);

    let (h2, dirty) = Ralloc::from_image(&image, sharded_cfg(2));
    assert!(!dirty, "clean close must not require recovery");
    let live = h2.partial_shards();
    // Nothing may remain on the reserved-but-stale heads.
    let geo = h2.geometry();
    for class in 1..40u32 {
        let all = ShardedPartial::new(class, 16).collect_all(h2.pool(), &geo);
        for (s, members) in all.iter().enumerate() {
            if s as u32 >= live {
                assert!(
                    members.is_empty(),
                    "class {class}: {} descriptors stranded on stale shard {s}",
                    members.len()
                );
            }
        }
    }
    let report = check_heap(&h2);
    assert!(report.is_consistent(), "{:?}", report.violations);
    // The folded partial superblocks are actually reachable: these
    // allocations must be served from them, not from fresh carves.
    for _ in 0..4 {
        assert!(!h2.malloc(BLOCK).is_null());
    }
    let s = h2.slow_stats();
    assert!(
        s.partial_pops_home.load(Ordering::Relaxed) + s.partial_steals.load(Ordering::Relaxed)
            > 0,
        "fills did not find the folded partial superblocks"
    );
    assert_eq!(h2.used_superblocks(), used, "carved fresh space despite folded partials");
}

#[test]
fn shard_count_change_across_restart_recovers() {
    // A pool written under 8 shards reopened under 2 (and vice versa):
    // shards are transient, so recovery must rebuild cleanly either way.
    let heap = Ralloc::create(32 << 20, sharded_cfg(8));
    let _held = make_partials(&heap, 5);
    let rooted = heap.malloc(8) as *mut u64;
    // SAFETY: fresh block.
    unsafe { *rooted = 5 };
    let off = rooted as usize - heap.pool().base() as usize;
    heap.pool().persist(off, 8);
    heap.set_root::<u64>(0, rooted);
    heap.crash_simulated();
    let image = heap.pool().persistent_image();

    for shards in [2usize, 8, 16] {
        let (h, dirty) = Ralloc::from_image(&image, sharded_cfg(shards));
        assert!(dirty);
        let stats = h.recover();
        assert_eq!(stats.reachable_blocks, 1, "shards={shards}");
        // Under a RALLOC_SHARDS override the live count differs from the
        // requested one; recovery must report the live count either way.
        assert_eq!(stats.shards, h.partial_shards());
        let report = check_heap(&h);
        assert!(report.is_consistent(), "shards={shards}: {:?}", report.violations);
        let p = h.malloc(BLOCK);
        assert!(!p.is_null());
    }
}
