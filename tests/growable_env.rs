//! `RALLOC_INIT_CAP`/`RALLOC_MAX_CAP` drive the reserve/commit machinery
//! from the environment, so any fixed-capacity workload binary becomes
//! growable without a code change.
//!
//! This is deliberately a single test in its own binary: env vars are
//! process-global, and mutating them while another thread reads them
//! (every heap creation does) is UB on glibc. One test = one thread =
//! no concurrent getenv. Do not add further `#[test]`s to this file.

use std::sync::atomic::Ordering;

use ralloc::{check_heap, Ralloc, RallocConfig, SB_SIZE};

#[test]
fn env_knobs_configure_growth() {
    std::env::set_var("RALLOC_INIT_CAP", "2M");
    std::env::set_var("RALLOC_MAX_CAP", "24M");
    let heap = Ralloc::create(8 << 20, RallocConfig::default());
    std::env::remove_var("RALLOC_INIT_CAP");
    std::env::remove_var("RALLOC_MAX_CAP");
    assert!(heap.committed_superblocks() * SB_SIZE <= 2 << 20, "init cap must apply");
    assert!(heap.max_superblocks() * SB_SIZE >= 24 << 20, "max cap must apply");
    // Serves past both the init cap and the capacity argument.
    let mut held = Vec::new();
    for _ in 0..(12 << 20) / 4096 {
        let p = heap.malloc(4096);
        assert!(!p.is_null());
        held.push(p);
    }
    assert!(heap.slow_stats().heap_grows.load(Ordering::Relaxed) >= 1);
    for p in held {
        heap.free(p);
    }
    assert!(check_heap(&heap).is_consistent());

    // With the knobs cleared again, creation reverts to the historical
    // fixed-pool behavior: everything committed upfront.
    let fixed = Ralloc::create(8 << 20, RallocConfig::default());
    assert_eq!(fixed.committed_superblocks(), fixed.max_superblocks());
    assert!(fixed.max_superblocks() * SB_SIZE >= 8 << 20);
    let p = fixed.malloc(64);
    assert!(!p.is_null());
    fixed.free(p);
    assert_eq!(fixed.slow_stats().heap_grows.load(Ordering::Relaxed), 0);

    // RALLOC_SHRINK=off pins the frontier: a clean close releases
    // nothing even though the whole heap is free.
    std::env::set_var("RALLOC_SHRINK", "off");
    let pinned = Ralloc::create(4 << 20, RallocConfig::default());
    let q = pinned.malloc(SB_SIZE / 2 + 1);
    assert!(!q.is_null());
    pinned.free(q);
    let committed = pinned.committed_superblocks();
    pinned.close().unwrap();
    assert_eq!(
        pinned.committed_superblocks(),
        committed,
        "RALLOC_SHRINK=off must keep the frontier monotone"
    );
    assert_eq!(pinned.slow_stats().heap_shrinks.load(Ordering::Relaxed), 0);
    std::env::remove_var("RALLOC_SHRINK");

    // Default policy (`both`): the same close releases the free tail.
    let shrinking = Ralloc::create(4 << 20, RallocConfig::default());
    let q = shrinking.malloc(SB_SIZE / 2 + 1);
    assert!(!q.is_null());
    shrinking.free(q);
    shrinking.close().unwrap();
    assert_eq!(
        shrinking.committed_superblocks(),
        0,
        "default shrink-on-close must release the fully-free frontier"
    );
    assert!(shrinking.slow_stats().sb_released.load(Ordering::Relaxed) > 0);
}
