//! Recoverability (paper Theorem 5.4) under adversarial crash points.
//!
//! These tests drive the heap in Tracked mode, where only lines that were
//! explicitly flushed *and* fenced survive a simulated power failure, and
//! use the `CrashInjector` to abort execution at persistence events
//! throughout an operation sequence. After each crash, recovery must
//! leave the heap in a state where all and only the root-reachable blocks
//! are allocated, and the heap must keep functioning.

use std::sync::Arc;

use nvm::{CrashInjector, CrashPoint, CrashStyle};
use pds::{NmTree, PStack};
use ralloc::{Ralloc, RallocConfig};

fn tracked_with_injector() -> (Ralloc, Arc<CrashInjector>) {
    let inj = CrashInjector::new();
    let cfg = RallocConfig { injector: Some(inj.clone()), ..RallocConfig::tracked() };
    (Ralloc::create(16 << 20, cfg), inj)
}

/// Run `work` with a crash armed after `budget` persistence events;
/// returns true if the crash fired.
fn run_until_crash(inj: &CrashInjector, budget: u64, work: impl FnOnce()) -> bool {
    inj.arm(budget);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(work));
    inj.disarm();
    match result {
        Ok(()) => false,
        Err(payload) => {
            assert!(CrashPoint::is(&*payload), "unexpected panic kind");
            true
        }
    }
}

#[test]
fn crash_point_sweep_during_stack_pushes() {
    // Learn the number of persistence events of the full run, then crash
    // at a sweep of points through it.
    let total_events = {
        let (heap, inj) = tracked_with_injector();
        let stack = PStack::create(&heap, 0);
        let before = inj.observed();
        for i in 0..40 {
            stack.push(i);
        }
        inj.observed() - before
    };
    assert!(total_events > 80, "expected >2 events per push, got {total_events}");

    for budget in (0..total_events).step_by(7) {
        let (heap, inj) = tracked_with_injector();
        let stack = PStack::create(&heap, 0);
        let crashed = run_until_crash(&inj, budget, || {
            for i in 0..40 {
                stack.push(i);
            }
        });
        assert!(crashed, "budget {budget} did not crash");
        drop(stack);
        heap.crash_simulated();
        heap.recover();
        let stack = PStack::attach(&heap, 0).expect("head cell persisted at create");
        // Durable prefix: the recovered stack is some prefix of the
        // pushes (buffered durable linearizability allows the final
        // unfenced push to be lost, never reordered or corrupted).
        let vals = stack.snapshot();
        let n = vals.len() as u64;
        assert!(n <= 40, "budget {budget}: more elements than pushed");
        for (i, v) in vals.iter().enumerate() {
            assert_eq!(*v, n - 1 - i as u64, "budget {budget}: stack order corrupted");
        }
        // The heap keeps working and new blocks never corrupt the stack.
        for i in 0..200u64 {
            let p = heap.malloc(16);
            assert!(!p.is_null(), "budget {budget}: heap broken after recovery");
            // SAFETY: fresh 16-byte block.
            unsafe { std::ptr::write(p as *mut u64, i) };
        }
        assert_eq!(stack.snapshot(), vals, "allocation after recovery corrupted the stack");
    }
}

#[test]
fn crash_point_sweep_during_tree_inserts() {
    let total_events = {
        let (heap, inj) = tracked_with_injector();
        let tree = NmTree::create(&heap, 0);
        let before = inj.observed();
        for i in 0..20 {
            tree.insert(i * 5, i);
        }
        inj.observed() - before
    };
    for budget in (0..total_events).step_by(11) {
        let (heap, inj) = tracked_with_injector();
        let tree = NmTree::create(&heap, 0);
        let crashed = run_until_crash(&inj, budget, || {
            for i in 0..20 {
                tree.insert(i * 5, i);
            }
        });
        assert!(crashed);
        drop(tree);
        heap.crash_simulated();
        heap.recover();
        let tree = NmTree::attach(&heap, 0).expect("sentinels persisted at create");
        // Durable subset: every surviving key is one we inserted with its
        // correct value; keys are unique and sorted.
        let keys = tree.keys();
        for w in keys.windows(2) {
            assert!(w[0] < w[1], "budget {budget}: duplicate or unsorted keys");
        }
        for &k in &keys {
            assert_eq!(k % 5, 0, "budget {budget}: phantom key {k}");
            assert_eq!(tree.get(k), Some(k / 5), "budget {budget}: wrong value for {k}");
        }
        // Tree still functional after recovery.
        assert!(tree.insert(1_000_003, 7));
        assert_eq!(tree.get(1_000_003), Some(7));
    }
}

#[test]
fn repeated_crashes_converge() {
    // Crash, recover, do more work, crash again — five generations.
    let (heap, _inj) = tracked_with_injector();
    let _stack = PStack::create(&heap, 0);
    let mut expected = Vec::new();
    for generation in 0..5u64 {
        let stack = PStack::attach(&heap, 0).unwrap();
        for i in 0..50 {
            assert!(stack.push(generation * 100 + i));
            expected.push(generation * 100 + i);
        }
        heap.crash_simulated();
        let stats = heap.recover();
        assert_eq!(
            stats.reachable_blocks as usize,
            expected.len() + 1,
            "generation {generation}"
        );
    }
    let stack = PStack::attach(&heap, 0).unwrap();
    let mut vals = stack.snapshot();
    vals.reverse();
    assert_eq!(vals, expected);
}

#[test]
fn injected_crash_sweep_recovers_with_parallel_workers() {
    // Same adversarial crash points as the sequential sweep above, but
    // recovery runs with multiple workers: the parallel mark + sharded
    // sweep must satisfy the identical durable-prefix contract.
    let total_events = {
        let (heap, inj) = tracked_with_injector();
        let stack = PStack::create(&heap, 0);
        let before = inj.observed();
        for i in 0..40 {
            stack.push(i);
        }
        inj.observed() - before
    };
    for budget in (1..total_events).step_by(13) {
        let (heap, inj) = tracked_with_injector();
        let stack = PStack::create(&heap, 0);
        let crashed = run_until_crash(&inj, budget, || {
            for i in 0..40 {
                stack.push(i);
            }
        });
        assert!(crashed, "budget {budget} did not crash");
        drop(stack);
        heap.crash_simulated();
        let stats = heap.recover_parallel(3);
        assert_eq!(stats.threads, 3);
        let stack = PStack::attach(&heap, 0).expect("head cell persisted at create");
        let vals = stack.snapshot();
        let n = vals.len() as u64;
        assert!(n <= 40, "budget {budget}: more elements than pushed");
        for (i, v) in vals.iter().enumerate() {
            assert_eq!(*v, n - 1 - i as u64, "budget {budget}: stack order corrupted");
        }
        for _ in 0..100 {
            assert!(!heap.malloc(16).is_null(), "budget {budget}: heap broken");
        }
        assert_eq!(stack.snapshot(), vals, "budget {budget}: allocation corrupted the stack");
        let report = ralloc::check_heap(&heap);
        assert!(report.is_consistent(), "budget {budget}: {:?}", report.violations);
    }
}

#[test]
fn random_eviction_crash_is_also_recoverable() {
    // Real hardware may persist *more* than what was fenced (spontaneous
    // cache eviction); recovery must tolerate that too.
    let (heap, _inj) = tracked_with_injector();
    let stack = PStack::create(&heap, 0);
    for i in 0..100 {
        stack.push(i);
    }
    // Garbage that would normally vanish; with eviction it may persist.
    for _ in 0..500 {
        let _ = heap.malloc(48);
    }
    heap.pool().crash_with(CrashStyle::RandomEviction { survive_permille: 500, seed: 7 });
    heap.crash_simulated(); // discard thread caches; pool already reverted
    heap.recover();
    let stack = PStack::attach(&heap, 0).unwrap();
    let vals = stack.snapshot();
    assert_eq!(vals.len(), 100);
    for (i, v) in vals.iter().enumerate() {
        assert_eq!(*v, 99 - i as u64);
    }
}

#[test]
fn leaked_blocks_before_crash_are_recovered_after() {
    // Allocate-but-never-attach (the crash window the paper designs
    // for): after recovery those blocks must be reusable.
    let (heap, _inj) = tracked_with_injector();
    let stack = PStack::create(&heap, 0);
    stack.push(1);
    for _ in 0..2000 {
        assert!(!heap.malloc(64).is_null()); // leaked on purpose
    }
    let used_before = heap.used_superblocks();
    heap.crash_simulated();
    let stats = heap.recover();
    assert_eq!(stats.reachable_blocks, 2, "head + one node");
    // All leaked space is free again: re-allocating the same volume must
    // not grow the heap.
    for _ in 0..2000 {
        assert!(!heap.malloc(64).is_null());
    }
    assert!(
        heap.used_superblocks() <= used_before,
        "leak not reclaimed: {} -> {}",
        used_before,
        heap.used_superblocks()
    );
}

#[test]
fn close_after_recovery_enables_clean_restart() {
    let (heap, _inj) = tracked_with_injector();
    let stack = PStack::create(&heap, 0);
    for i in 0..30 {
        stack.push(i);
    }
    heap.crash_simulated();
    heap.recover();
    drop(stack);
    heap.close().unwrap();
    let image = heap.pool().persistent_image();
    drop(heap);
    let (heap2, dirty) = Ralloc::from_image(&image, RallocConfig::tracked());
    assert!(!dirty, "close() after recovery must yield a clean image");
    let stack = PStack::attach(&heap2, 0).unwrap();
    assert_eq!(stack.len(), 30);
}

#[test]
fn recovery_invalidates_stale_thread_caches() {
    // Recovery rebuilds the free lists from the trace, so every block not
    // reachable from a root — including blocks sitting in thread caches —
    // is declared free. A cache that survived `recover()` would therefore
    // alias the rebuilt lists: its pops and the lists' fills would hand
    // out the same block twice. Regression test for exactly that (the
    // malloc+free below leaves a whole fill batch cached on this thread).
    let heap = Ralloc::create(8 << 20, RallocConfig::default());
    let p = heap.malloc(128);
    assert!(!p.is_null());
    heap.free(p);
    heap.recover();
    let mut seen = std::collections::HashSet::new();
    for _ in 0..1024 {
        let q = heap.malloc(128);
        assert!(!q.is_null());
        assert!(seen.insert(q as usize), "block handed out twice after recovery");
    }
    let report = ralloc::check_heap(&heap);
    assert!(report.is_consistent(), "{:?}", report.violations);
}

#[test]
fn recovery_waits_out_thread_exit_cache_drains() {
    // A scoped worker's TLS cache destructor runs during OS thread
    // teardown — *after* `thread::scope` returns — so its bin flush can
    // land while the joining thread is already inside recovery. The
    // recovery-entry rendezvous (generation bump + exit-drain wait) must
    // make that flush either complete first or never start. Exercise the
    // window repeatedly: populate-and-free from a worker, then recover
    // immediately after the scope join.
    let heap = Ralloc::create(64 << 20, RallocConfig::default());
    for round in 0..6 {
        std::thread::scope(|s| {
            let heap = &heap;
            s.spawn(move || {
                let mut held = Vec::new();
                for i in 0..4000u64 {
                    let p = heap.malloc(4096);
                    assert!(!p.is_null());
                    if i % 3 == 0 {
                        heap.free(p);
                    } else {
                        held.push(p);
                    }
                }
                for p in held {
                    heap.free(p);
                }
            });
        });
        let stats = heap.recover();
        assert_eq!(stats.reachable_blocks, 0, "round {round}: nothing is rooted");
        let report = ralloc::check_heap(&heap);
        assert!(report.is_consistent(), "round {round}: {:?}", report.violations);
    }
}

/// Satellite of the kill-based harness (`crates/crashtest`): the same
/// op-log + visibility oracles it runs after a real SIGKILL, bridged
/// into the cooperative tracked-mode sweep. Every crash point through a
/// mixed enqueue/dequeue run must leave the recovered queue exactly
/// consistent with the persisted log: acked ops exactly-once visible,
/// the in-flight op at-most-once.
#[test]
fn oracle_checked_crash_sweep_queue() {
    use crashtest::oplog::{self, OpKind, OpWriter, RES_NONE};
    use crashtest::oracle;
    use pds::PQueue;

    let total_events = {
        let (heap, inj) = tracked_with_injector();
        let q = PQueue::create(&heap, 0);
        let dir = oplog::create(&heap, 1, 1);
        let before = inj.observed();
        queue_workload(&heap, &q, dir);
        inj.observed() - before
    };
    for budget in (0..total_events).step_by(9) {
        let (heap, inj) = tracked_with_injector();
        let q = PQueue::create(&heap, 0);
        let dir = oplog::create(&heap, 1, 1);
        let crashed = run_until_crash(&inj, budget, || queue_workload(&heap, &q, dir));
        assert!(crashed, "budget {budget} did not crash");
        drop(q);
        heap.crash_simulated();
        heap.recover();
        let q = PQueue::attach(&heap, 0).expect("queue anchor persisted at create");
        let dir = oplog::attach(&heap, 1).expect("op-log dir persisted at create");
        let logs = oplog::read_logs(&heap, dir).unwrap();
        oracle::check_conservation(&logs, &q.snapshot(), false)
            .unwrap_or_else(|e| panic!("budget {budget}: oracle violation: {e}"));
    }

    fn queue_workload(heap: &Ralloc, q: &pds::PQueue, dir: *mut oplog::OpLogDir) {
        let mut w = OpWriter::new(heap, dir, 0);
        let mut seq = 0u64;
        for i in 0..40u64 {
            if i % 3 != 2 {
                seq += 1;
                w.begin(OpKind::Enqueue, seq, 0);
                assert!(q.enqueue(seq));
                w.ack(0);
            } else {
                w.begin(OpKind::Dequeue, 0, 0);
                let res = q.dequeue().map_or(RES_NONE, |v| v);
                w.ack(res);
            }
        }
    }
}

/// Same bridge for the stack: LIFO order plus conservation under every
/// crash point of a push/pop mix.
#[test]
fn oracle_checked_crash_sweep_stack() {
    use crashtest::oplog::{self, OpKind, OpWriter, RES_NONE};
    use crashtest::oracle;

    let total_events = {
        let (heap, inj) = tracked_with_injector();
        let st = PStack::create(&heap, 0);
        let dir = oplog::create(&heap, 1, 1);
        let before = inj.observed();
        stack_workload(&heap, &st, dir);
        inj.observed() - before
    };
    for budget in (0..total_events).step_by(9) {
        let (heap, inj) = tracked_with_injector();
        let st = PStack::create(&heap, 0);
        let dir = oplog::create(&heap, 1, 1);
        let crashed = run_until_crash(&inj, budget, || stack_workload(&heap, &st, dir));
        assert!(crashed, "budget {budget} did not crash");
        drop(st);
        heap.crash_simulated();
        heap.recover();
        let st = PStack::attach(&heap, 0).expect("stack head persisted at create");
        let dir = oplog::attach(&heap, 1).expect("op-log dir persisted at create");
        let logs = oplog::read_logs(&heap, dir).unwrap();
        oracle::check_conservation(&logs, &st.snapshot(), true)
            .unwrap_or_else(|e| panic!("budget {budget}: oracle violation: {e}"));
    }

    fn stack_workload(heap: &Ralloc, st: &PStack, dir: *mut oplog::OpLogDir) {
        let mut w = OpWriter::new(heap, dir, 0);
        let mut seq = 0u64;
        for i in 0..40u64 {
            if i % 3 != 2 {
                seq += 1;
                w.begin(OpKind::Push, seq, 0);
                assert!(st.push(seq));
                w.ack(0);
            } else {
                w.begin(OpKind::Pop, 0, 0);
                let res = st.pop().map_or(RES_NONE, |v| v);
                w.ack(res);
            }
        }
    }
}

mod random_crash_proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Randomized crash-point exploration: a random mix of pushes and
        /// pops, a crash after a random number of persistence events,
        /// then recovery. The surviving stack must be a plausible state:
        /// sorted-prefix consistency is too strong under pops, so we
        /// assert the invariants that must always hold — uniqueness of
        /// live nodes, functional heap, and that recovery is idempotent.
        #[test]
        fn random_ops_random_crash(
            ops in proptest::collection::vec(proptest::bool::weighted(0.7), 5..60),
            budget in 1u64..400,
        ) {
            let (heap, inj) = tracked_with_injector();
            let stack = PStack::create(&heap, 0);
            let crashed = run_until_crash(&inj, budget, || {
                let mut next = 0u64;
                for push in ops {
                    if push {
                        stack.push(next);
                        next += 1;
                    } else {
                        stack.pop();
                    }
                }
            });
            drop(stack);
            heap.crash_simulated();
            let s1 = heap.recover();
            let s2 = heap.recover();
            prop_assert_eq!(s1.reachable_blocks, s2.reachable_blocks, "recovery not idempotent");
            let stack = PStack::attach(&heap, 0).expect("head persisted");
            let snap = stack.snapshot();
            // Values are unique (no block aliased into the list twice).
            let mut sorted = snap.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), snap.len(), "duplicate node after recovery");
            // Heap serves allocations without touching live nodes.
            for _ in 0..50 {
                prop_assert!(!heap.malloc(16).is_null());
            }
            prop_assert_eq!(stack.snapshot(), snap);
            let _ = crashed;
            // Full structural invariant check.
            let report = ralloc::check_heap(&heap);
            prop_assert!(report.is_consistent(), "{:?}", report.violations);
        }
    }
}

// ---------------------------------------------------------------------
// Persistent flight recorder: the crash-surviving event ring must
// reopen cleanly with torn tails dropped (and counted) and wraparound
// keeping exactly the newest window — the post-mortem timeline a
// failing crashtest round attaches is built from this scan.
mod flight_ring {
    use super::*;
    use ralloc::layout::{FLIGHT_CAP, FLIGHT_RECORDS_OFF, FLIGHT_REC_SIZE};

    #[test]
    fn torn_tail_record_is_dropped_and_counted_on_reopen() {
        let heap = Ralloc::create(8 << 20, RallocConfig::default());
        let p = heap.malloc(64);
        heap.set_root::<u64>(0, p as *const u64);
        heap.close().unwrap();
        let mut image = heap.pool().persistent_image();
        drop(heap);
        // Corrupt one payload byte of the newest record — exactly what a
        // kill between a slot's payload stores and its seq+crc publish
        // leaves behind (the publish word still covers the old payload).
        let scan = ralloc::flight::scan_image(&image);
        assert_eq!(scan.torn, 0);
        let newest = *scan.events.last().expect("protocol events were recorded");
        let slot = (newest.seq as usize - 1) % FLIGHT_CAP;
        image[FLIGHT_RECORDS_OFF + slot * FLIGHT_REC_SIZE + 16] ^= 0xA5;

        let (heap2, dirty) = Ralloc::from_image(&image, RallocConfig::default());
        assert!(!dirty);
        let pre = heap2.preopen_flight();
        assert_eq!(pre.torn, 1, "the torn record must be counted");
        assert!(
            pre.events.iter().all(|e| e.seq != newest.seq),
            "the torn record must be dropped, not decoded as history"
        );
        assert_eq!(
            heap2.telemetry().counter_value("flight_torn_records"),
            Some(1),
            "the adoption scan publishes its torn count as a metric"
        );
    }

    #[test]
    fn wraparound_keeps_the_newest_window_across_reopen() {
        let heap = Ralloc::create(8 << 20, RallocConfig::default());
        let p = heap.malloc(64);
        // Root publishes are protocol events: enough of them laps the ring.
        for _ in 0..FLIGHT_CAP + 40 {
            heap.set_root::<u64>(1, p as *const u64);
        }
        heap.close().unwrap();
        let image = heap.pool().persistent_image();
        drop(heap);

        let (heap2, _) = Ralloc::from_image(&image, RallocConfig::default());
        let pre = heap2.preopen_flight();
        assert_eq!(pre.torn, 0);
        assert_eq!(pre.events.len(), FLIGHT_CAP, "ring retains exactly its capacity");
        assert!(
            pre.events.windows(2).all(|w| w[1].seq == w[0].seq + 1),
            "survivors are the contiguous newest window"
        );
        assert_eq!(pre.events.last().unwrap().kind_name(), "close");
        // New records keep extending the same monotonic sequence.
        heap2.set_root::<u64>(1, std::ptr::null());
        let now = heap2.flight_timeline();
        assert!(now.events.last().unwrap().seq > pre.events.last().unwrap().seq);
    }

    #[test]
    fn cooperative_crash_leaves_the_ring_scannable() {
        let (heap, inj) = tracked_with_injector();
        let stack = PStack::create(&heap, 0);
        let crashed = run_until_crash(&inj, 60, || {
            for i in 0..40 {
                stack.push(i);
            }
        });
        assert!(crashed);
        drop(stack);
        heap.crash_simulated();
        heap.recover();
        let scan = heap.flight_timeline();
        // Recovery's phases were recorded, and the scan decodes without
        // fabricating events (torn slots are counted, never decoded).
        assert!(scan.events.iter().any(|e| e.kind_name() == "recovery_splice"));
        assert!(scan.events.windows(2).all(|w| w[0].seq < w[1].seq));
    }
}

#[test]
fn crashed_remote_rings_leak_nothing() {
    // In-flight remote frees live on volatile MPSC rings (`ralloc`'s
    // remote-free path): a crash loses whatever batches were parked
    // there, and recovery's reachability sweep must reclaim those blocks
    // exactly like discarded cache bins — no leak, no double accounting.
    use std::sync::atomic::Ordering;

    let (heap, _inj) = tracked_with_injector();
    if !heap.remote_rings_enabled() {
        eprintln!("skipping: remote rings disabled (RALLOC_REMOTE_RING/RALLOC_SHARDS?)");
        return;
    }
    // A producer thread drains five whole 64 B superblock populations
    // through its cache and exits with an empty bin, so its thread-exit
    // drain returns nothing: every block is owned by the test body.
    let per_sb = ralloc::SB_SIZE / 64;
    let ptrs: Vec<usize> = std::thread::scope(|s| {
        s.spawn(|| (0..5 * per_sb).map(|_| heap.malloc(64) as usize).collect())
            .join()
            .unwrap()
    });
    assert!(ptrs.iter().all(|&p| p != 0));
    // The consumer (this thread) frees all of them: each whole-bin flush
    // routes its foreign-owned groups onto the owners' remote rings.
    for &p in &ptrs {
        heap.free(p as *mut u8);
    }
    #[cfg(not(feature = "telemetry-off"))]
    assert!(
        heap.slow_stats().remote_ring_pushes.load(Ordering::Relaxed) > 0,
        "setup never parked a batch on a ring"
    );
    let used_before = heap.used_superblocks();
    heap.crash_simulated(); // the rings die with DRAM
    let stats = heap.recover();
    assert_eq!(stats.reachable_blocks, 0, "nothing was rooted");
    // Every block — the ring-parked ones included — must be reusable:
    // re-allocating the same volume must not grow the heap.
    for _ in 0..5 * per_sb {
        assert!(!heap.malloc(64).is_null());
    }
    assert!(
        heap.used_superblocks() <= used_before,
        "ring-parked blocks leaked across the crash: {} -> {}",
        used_before,
        heap.used_superblocks()
    );
    let report = ralloc::check_heap(&heap);
    assert!(report.is_consistent(), "{:?}", report.violations);
}
