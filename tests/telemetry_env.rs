//! `RALLOC_TELEMETRY` auto-starts the trajectory sampler at heap
//! construction — the env-knob path soak scripts use without touching
//! the API.
//!
//! Like `growable_env.rs`, this is deliberately a single test in its own
//! binary: env vars are process-global, and mutating them while another
//! thread reads them (every heap creation does) is UB on glibc. One test
//! = one thread = no concurrent getenv. Do not add further `#[test]`s to
//! this file. (Being the process's first heap also pins the heap id to
//! 1, so the sampler writes to the un-suffixed path.)

use std::time::Duration;

use ralloc::{Ralloc, RallocConfig};
use telemetry::json;

#[test]
fn env_knob_auto_starts_sampler() {
    let out = std::env::temp_dir()
        .join(format!("ralloc_env_knob_{}.jsonl", std::process::id()))
        .to_string_lossy()
        .into_owned();
    std::env::set_var("RALLOC_TELEMETRY", &out);
    std::env::set_var("RALLOC_TELEMETRY_MS", "5");
    let heap = Ralloc::create(16 << 20, RallocConfig::default());
    std::env::remove_var("RALLOC_TELEMETRY");
    std::env::remove_var("RALLOC_TELEMETRY_MS");
    let p = heap.malloc(256);
    heap.free(p);
    std::thread::sleep(Duration::from_millis(30));
    heap.close().expect("close");
    let body = std::fs::read_to_string(&out).expect("env knob produced a trajectory");
    assert!(!body.is_empty(), "sampler wrote at least the immediate first sample");
    for line in body.lines() {
        let v = json::parse(line).expect("JSONL line parses");
        assert_eq!(v.get("heap_id").and_then(|x| x.as_u64()), Some(1));
        assert!(v.get("committed_len").and_then(|x| x.as_u64()).unwrap() > 0);
    }
    let _ = std::fs::remove_file(&out);
}
